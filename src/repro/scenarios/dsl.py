"""Config-driven scenario DSL over the synthetic traffic primitives.

A scenario is data, not code: a :class:`ScenarioSpec` names a stream length,
a seed and an ordered list of *primitives* — small parameter dicts — and
:meth:`ScenarioSpec.build` compiles them onto a
:class:`~repro.data.StreamingTrafficFeed`.  Specs load from JSON or INI
files (:func:`load_scenario`), so the scripted feeds streaming experiments
run on live in version-controlled config instead of ad-hoc driver code.

Two families of primitives compose:

* the **legacy** kinds — ``regime_shift``, ``incident_storm``,
  ``dropout_burst`` — are forwarded verbatim as
  :class:`~repro.data.StreamScenarioEvent` into the feed's own generation
  pass.  A spec built from :func:`legacy_scenario` is therefore
  **bit-identical** to the hand-coded ``StreamingTrafficFeed.scenario``
  feed at the same seed: same RNG, same draw order, same floats;
* the **extended** kinds — ``holiday_cycle``, ``clock_skew``,
  ``stuck_sensor``, ``adversarial_spike``, ``cold_start``, ``cascade`` —
  are post-transforms on the generated stream.  Each one draws from its own
  :class:`numpy.random.SeedSequence`-derived generator (salted by kind and
  by position in the spec), so adding or re-ordering extended primitives
  never perturbs the legacy RNG stream or each other.

Example (JSON)::

    {
      "name": "holiday-regime",
      "num_steps": 1000,
      "seed": 7,
      "primitives": [
        {"kind": "regime_shift", "start": 500, "noise_scale": 2.5},
        {"kind": "holiday_cycle", "every_days": 7, "attenuation": 0.55},
        {"kind": "stuck_sensor", "start": 300, "duration": 60,
         "node_fraction": 0.1}
      ]
    }

The INI form mirrors it: a ``[scenario]`` section plus one
``[primitive.<n>]`` section per primitive, values parsed as JSON literals.
"""

from __future__ import annotations

import configparser
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.synthetic import (
    StreamingTrafficFeed,
    StreamScenarioEvent,
    SyntheticTrafficConfig,
)

#: Primitive kinds compiled into :class:`StreamScenarioEvent` and applied
#: inside the feed's own generation pass (bit-identical to hand-coded feeds).
LEGACY_KINDS = ("regime_shift", "incident_storm", "dropout_burst")

#: Allowed parameters (with defaults) per primitive kind.  ``None`` defaults
#: mean "to the end of the stream" for durations; node-targeted primitives
#: accept an explicit ``nodes`` list instead of a sampled ``node_fraction``.
PRIMITIVE_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "regime_shift": {
        "start": 0, "duration": None, "noise_scale": 1.0, "flow_scale": 1.0,
    },
    "incident_storm": {
        "start": 0, "duration": None, "rate": 0.2, "severity": 0.5,
    },
    "dropout_burst": {
        "start": 0, "duration": None, "node_fraction": 0.3,
    },
    # Extra weekly/holiday structure on top of the generator's daily cycle:
    # every ``every_days``-th day is a holiday attenuated to ``attenuation``
    # of its normal flow; an optional slow seasonal sinusoid with period
    # ``season_period_days`` and relative ``season_amplitude`` rides along.
    "holiday_cycle": {
        "every_days": 7, "attenuation": 0.6,
        "season_period_days": 0, "season_amplitude": 0.0,
    },
    # A subset of sensors reports readings ``skew`` steps stale (per-node
    # skew drawn uniformly from 1..max_skew_steps): observed values shift,
    # the clean oracle does not — exactly the truth/report misalignment a
    # miscalibrated sensor clock produces.
    "clock_skew": {
        "start": 0, "duration": None, "node_fraction": 0.2,
        "max_skew_steps": 3, "nodes": None,
    },
    # Frozen sensors: the chosen nodes repeat their last pre-event reading
    # for the whole span (a stuck loop detector, not a dropout — the value
    # stays plausible, which is what makes it nasty).
    "stuck_sensor": {
        "start": 0, "duration": None, "node_fraction": 0.1, "nodes": None,
    },
    # Sparse adversarial outliers: ~``rate`` sensors-per-step spike by
    # ``magnitude`` observation-noise sigmas.
    "adversarial_spike": {
        "start": 0, "duration": None, "rate": 0.05, "magnitude": 8.0,
    },
    # Cold-start corridor: the chosen nodes are dark (NaN / zero, matching
    # the feed's dropout encoding) before ``start`` and come online then —
    # the single-feed face of a corridor joining a warm fleet.
    "cold_start": {
        "start": 0, "node_fraction": 0.25, "nodes": None,
    },
    # Cascading multi-region incidents: the node range is split into
    # ``groups`` contiguous regions; region ``r`` takes an incident burst of
    # ``duration`` steps starting at ``start + r * stagger``.
    "cascade": {
        "start": 0, "duration": 60, "stagger": 50, "groups": 2,
        "rate": 0.3, "severity": 0.6,
    },
}

#: Per-kind salts feeding the derived SeedSequence of extended primitives.
_KIND_SALTS = {kind: index for index, kind in enumerate(sorted(PRIMITIVE_DEFAULTS))}


def _validate_primitive(primitive: Dict[str, Any]) -> Dict[str, Any]:
    """One validated, defaults-filled primitive dict (kind first)."""
    if "kind" not in primitive:
        raise ValueError(f"primitive is missing its 'kind': {primitive!r}")
    kind = str(primitive["kind"])
    if kind not in PRIMITIVE_DEFAULTS:
        raise ValueError(
            f"unknown primitive kind {kind!r}; available: "
            f"{', '.join(sorted(PRIMITIVE_DEFAULTS))}"
        )
    allowed = PRIMITIVE_DEFAULTS[kind]
    unknown = set(primitive) - set(allowed) - {"kind"}
    if unknown:
        raise ValueError(
            f"primitive {kind!r} does not accept {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    merged = {"kind": kind, **allowed}
    merged.update({key: primitive[key] for key in primitive if key != "kind"})
    return merged


def _span(start: int, duration: Optional[int], num_steps: int) -> Tuple[int, int]:
    stop = num_steps if duration is None else min(int(start) + int(duration), num_steps)
    return min(max(int(start), 0), num_steps), stop


def _pick_nodes(
    primitive: Dict[str, Any], num_nodes: int, rng: np.random.Generator
) -> np.ndarray:
    """Explicit ``nodes`` list, or a ``node_fraction`` sample from ``rng``."""
    if primitive.get("nodes") is not None:
        nodes = np.asarray(primitive["nodes"], dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= num_nodes):
            raise ValueError(f"nodes out of range for {num_nodes} sensors: {nodes}")
        return nodes
    hit = max(1, int(round(float(primitive["node_fraction"]) * num_nodes)))
    return rng.choice(num_nodes, size=min(hit, num_nodes), replace=False)


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative streaming scenario: length, seed, ordered primitives.

    ``config`` holds keyword overrides for the feed's
    :class:`~repro.data.synthetic.SyntheticTrafficConfig` (e.g. a flat daily
    profile for drift-localization experiments); ``primitives`` is the
    ordered tuple of validated parameter dicts :meth:`build` compiles.
    """

    name: str
    num_steps: int = 1000
    seed: int = 0
    nan_dropouts: bool = True
    primitives: Tuple[Dict[str, Any], ...] = ()
    config: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.num_steps <= 0:
            raise ValueError("num_steps must be positive")
        validated = tuple(_validate_primitive(dict(p)) for p in self.primitives)
        object.__setattr__(self, "primitives", validated)
        if self.config is not None:
            unknown = set(self.config) - set(SyntheticTrafficConfig().__dict__)
            if unknown:
                raise ValueError(
                    f"unknown traffic-config fields {sorted(unknown)}"
                )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "name": self.name,
            "num_steps": self.num_steps,
            "seed": self.seed,
            "nan_dropouts": self.nan_dropouts,
            "primitives": [dict(p) for p in self.primitives],
        }
        if self.config is not None:
            record["config"] = dict(self.config)
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "ScenarioSpec":
        known = {"name", "num_steps", "seed", "nan_dropouts", "primitives", "config"}
        unknown = set(record) - known
        if unknown:
            raise ValueError(f"unknown scenario fields {sorted(unknown)}")
        return cls(
            name=str(record.get("name", "scenario")),
            num_steps=int(record.get("num_steps", 1000)),
            seed=int(record.get("seed", 0)),
            nan_dropouts=bool(record.get("nan_dropouts", True)),
            primitives=tuple(record.get("primitives", ())),
            config=record.get("config"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the spec as a JSON scenario file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #
    def build(self, network) -> StreamingTrafficFeed:
        """Compile the spec onto ``network`` into a streaming feed.

        Legacy primitives become the feed's scripted events (generated
        in-pass, bit-identical to hand-coded feeds); extended primitives are
        then applied in spec order, each with its own derived generator.
        """
        events = [
            StreamScenarioEvent(
                **{key: value for key, value in p.items() if key != "kind"},
                kind=p["kind"],
            )
            for p in self.primitives
            if p["kind"] in LEGACY_KINDS
        ]
        config = (
            SyntheticTrafficConfig(**self.config) if self.config is not None else None
        )
        feed = StreamingTrafficFeed(
            network,
            self.num_steps,
            config=config,
            seed=self.seed,
            events=events,
            nan_dropouts=self.nan_dropouts,
        )
        for index, primitive in enumerate(self.primitives):
            kind = primitive["kind"]
            if kind in LEGACY_KINDS:
                continue
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    [self.seed % (2 ** 32), _KIND_SALTS[kind], index]
                )
            )
            _EXTENDED_APPLIERS[kind](feed, primitive, rng)
        return feed


# ---------------------------------------------------------------------- #
# Extended-primitive transforms (post-generation, derived RNGs)
# ---------------------------------------------------------------------- #
def _apply_holiday_cycle(
    feed: StreamingTrafficFeed, p: Dict[str, Any], rng: np.random.Generator
) -> None:
    steps_per_day = feed.config.steps_per_day
    day_index = np.arange(feed.num_steps) // steps_per_day
    scale = np.ones(feed.num_steps)
    every = int(p["every_days"])
    if every > 0:
        holiday = day_index % every == every - 1
        scale[holiday] *= float(p["attenuation"])
    period = int(p["season_period_days"])
    if period > 0 and float(p["season_amplitude"]) != 0.0:
        t = np.arange(feed.num_steps) / (period * steps_per_day)
        scale *= 1.0 + float(p["season_amplitude"]) * np.sin(2.0 * np.pi * t)
    column = scale[:, None]
    feed.clean *= column
    feed.noise_sigma *= column
    feed.values *= column  # NaN dropouts stay NaN


def _apply_clock_skew(
    feed: StreamingTrafficFeed, p: Dict[str, Any], rng: np.random.Generator
) -> None:
    start, stop = _span(p["start"], p["duration"], feed.num_steps)
    nodes = _pick_nodes(p, feed.num_nodes, rng)
    skews = rng.integers(1, int(p["max_skew_steps"]) + 1, size=nodes.size)
    for node, skew in zip(nodes, skews):
        column = feed.values[:, node].copy()
        skew = int(min(skew, stop - start))
        # The skewed sensor reports ``skew``-step-stale readings for the
        # span; the clean oracle is untouched (the world didn't lag, the
        # sensor's clock did).
        feed.values[start + skew : stop, node] = column[start : stop - skew]


def _apply_stuck_sensor(
    feed: StreamingTrafficFeed, p: Dict[str, Any], rng: np.random.Generator
) -> None:
    start, stop = _span(p["start"], p["duration"], feed.num_steps)
    if stop <= start:
        return
    nodes = _pick_nodes(p, feed.num_nodes, rng)
    for node in nodes:
        frozen = feed.values[max(start - 1, 0), node]
        if not np.isfinite(frozen):
            frozen = feed.clean[max(start - 1, 0), node]
        feed.values[start:stop, node] = frozen


def _apply_adversarial_spike(
    feed: StreamingTrafficFeed, p: Dict[str, Any], rng: np.random.Generator
) -> None:
    start, stop = _span(p["start"], p["duration"], feed.num_steps)
    if stop <= start:
        return
    hits = rng.random((stop - start, feed.num_nodes)) < (
        float(p["rate"]) / feed.num_nodes
    )
    bump = float(p["magnitude"]) * feed.noise_sigma[start:stop]
    span = feed.values[start:stop]
    span[hits] += bump[hits]


def _apply_cold_start(
    feed: StreamingTrafficFeed, p: Dict[str, Any], rng: np.random.Generator
) -> None:
    start = min(max(int(p["start"]), 0), feed.num_steps)
    if start == 0:
        return
    nodes = _pick_nodes(p, feed.num_nodes, rng)
    dark = np.nan if feed.nan_dropouts else 0.0
    feed.values[:start, nodes] = dark
    feed.dropout_mask[:start, nodes] = True


def _apply_cascade(
    feed: StreamingTrafficFeed, p: Dict[str, Any], rng: np.random.Generator
) -> None:
    groups = max(int(p["groups"]), 1)
    partitions = np.array_split(np.arange(feed.num_nodes), groups)
    incident_len = feed.config.incident_duration_steps
    for region, nodes in enumerate(partitions):
        if nodes.size == 0:
            continue
        start, stop = _span(
            int(p["start"]) + region * int(p["stagger"]), p["duration"], feed.num_steps
        )
        if stop <= start:
            continue
        count = rng.poisson(max(float(p["rate"]) * (stop - start), 0.0))
        for _ in range(int(count)):
            node = int(rng.choice(nodes))
            at = int(rng.integers(start, stop))
            until = min(at + incident_len, feed.num_steps)
            severity = float(p["severity"]) * rng.uniform(0.6, 1.0)
            # The capacity drop hits truth and observation together — a real
            # incident, unlike the sensor-layer primitives above.
            feed.clean[at:until, node] *= 1.0 - severity
            feed.values[at:until, node] *= 1.0 - severity


_EXTENDED_APPLIERS = {
    "holiday_cycle": _apply_holiday_cycle,
    "clock_skew": _apply_clock_skew,
    "stuck_sensor": _apply_stuck_sensor,
    "adversarial_spike": _apply_adversarial_spike,
    "cold_start": _apply_cold_start,
    "cascade": _apply_cascade,
}


# ---------------------------------------------------------------------- #
# Canonical specs and file loaders
# ---------------------------------------------------------------------- #
def legacy_scenario(
    name: str, num_steps: int = 1000, seed: int = 0, **overrides: Any
) -> ScenarioSpec:
    """The three canonical scripted feeds as DSL specs.

    Builds the exact primitive parameters
    :meth:`StreamingTrafficFeed.scenario` hard-codes, so
    ``legacy_scenario(name, n, seed).build(network)`` is bit-identical to
    ``StreamingTrafficFeed.scenario(network, name, n, seed=seed)``.
    ``overrides`` replace event fields, mirroring the classmethod.
    """
    half, third, twelfth = num_steps // 2, num_steps // 3, max(num_steps // 12, 1)
    defaults: Dict[str, Dict[str, Any]] = {
        "regime_shift": {"kind": "regime_shift", "start": half, "noise_scale": 2.5},
        "incident_storm": {
            "kind": "incident_storm", "start": third,
            "duration": max(num_steps // 6, 1), "rate": 0.3, "severity": 0.6,
        },
        "dropout_burst": {
            "kind": "dropout_burst", "start": half, "duration": twelfth,
            "node_fraction": 0.4,
        },
    }
    if name not in defaults:
        raise ValueError(f"unknown scenario {name!r}; available: {', '.join(defaults)}")
    primitive = defaults[name]
    primitive.update(overrides)
    return ScenarioSpec(
        name=name, num_steps=num_steps, seed=seed, primitives=(primitive,)
    )


def parse_scenario_json(text: str) -> ScenarioSpec:
    return ScenarioSpec.from_dict(json.loads(text))


def parse_scenario_ini(text: str) -> ScenarioSpec:
    """Parse the INI scenario form: ``[scenario]`` + ``[primitive.<n>]``.

    Section values are parsed as JSON literals (numbers, booleans, ``null``,
    lists) with a plain-string fallback, so ``duration = null`` and
    ``nodes = [0, 3]`` work without quoting gymnastics.
    """
    parser = configparser.ConfigParser()
    parser.read_string(text)
    if "scenario" not in parser:
        raise ValueError("INI scenario needs a [scenario] section")

    def coerce(raw: str) -> Any:
        try:
            return json.loads(raw)
        except (json.JSONDecodeError, ValueError):
            return raw

    record: Dict[str, Any] = {
        key: coerce(value) for key, value in parser["scenario"].items()
    }
    primitive_sections = sorted(
        (section for section in parser.sections() if section.startswith("primitive")),
        key=lambda section: (len(section), section),
    )
    record["primitives"] = [
        {key: coerce(value) for key, value in parser[section].items()}
        for section in primitive_sections
    ]
    config_record = {
        key: coerce(value) for key, value in parser["config"].items()
    } if "config" in parser else None
    if config_record:
        record["config"] = config_record
    return ScenarioSpec.from_dict(record)


def load_scenario(path: Union[str, Path]) -> ScenarioSpec:
    """Load a :class:`ScenarioSpec` from a ``.json`` or ``.ini``/``.cfg`` file."""
    path = Path(path)
    if path.suffix.lower() == ".json":
        return parse_scenario_json(path.read_text())
    if path.suffix.lower() in (".ini", ".cfg"):
        return parse_scenario_ini(path.read_text())
    raise ValueError(
        f"unsupported scenario file type {path.suffix!r} (use .json, .ini or .cfg)"
    )
