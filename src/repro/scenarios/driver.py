"""Fleet-level scenario driver: late joins and scheduled chaos.

:meth:`StreamFleet.run` drives feeds that all exist from tick 0.  Scenario
experiments need two things it cannot express:

* **cold-start corridors** — a stream that *joins a warm fleet* at tick
  ``k``: it must not be registered (let alone observed) before then, and
  from ``k`` on it warms up while its neighbours are already calibrated;
* **chaos actions** — scheduled process-level faults
  (:class:`~repro.scenarios.chaos.ChaosSchedule`), including
  kill-and-restore actions that *replace the fleet object* mid-run.

:func:`run_fleet_scenario` is the small loop providing both on top of the
unchanged :meth:`StreamFleet.tick`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.scenarios.chaos import ChaosSchedule


def run_fleet_scenario(
    fleet: Any,
    feeds: Mapping[str, Iterable[np.ndarray]],
    *,
    join_at: Optional[Mapping[str, int]] = None,
    stream_args: Optional[Mapping[str, Dict[str, Any]]] = None,
    chaos: Optional[ChaosSchedule] = None,
    max_ticks: Optional[int] = None,
) -> Tuple[Any, List[Any]]:
    """Drive ``fleet`` over ``feeds`` with scheduled joins and chaos.

    Parameters
    ----------
    feeds:
        ``name -> iterable`` of observation rows, as for
        :meth:`StreamFleet.run`.
    join_at:
        ``name -> tick`` at which that stream comes online; its feed is not
        consumed before then.  Streams absent from the mapping join at 0.
    stream_args:
        ``name -> add_stream kwargs`` (``region`` / ``node`` / ``key`` ...)
        for streams not yet registered when they join — the cold-start
        corridor path.  Already-registered streams are left untouched.
    chaos:
        A :class:`ChaosSchedule` fired at the top of each tick; an action
        returning a fleet (kill-and-restore) replaces the driven one.
    max_ticks:
        Optional cap on the number of ticks.

    Returns ``(fleet, results)`` — the fleet actually holding the final
    state (chaos may have replaced the argument) and the per-tick
    :class:`~repro.fleet.runner.FleetStepResult` list.
    """
    iterators = {name: iter(feed) for name, feed in feeds.items()}
    joins = {name: int(tick) for name, tick in (join_at or {}).items()}
    stream_args = dict(stream_args or {})
    results: List[Any] = []
    tick = 0
    while iterators and (max_ticks is None or tick < max_ticks):
        if chaos is not None:
            fleet = chaos.fire(fleet, tick)
        observations: Dict[str, np.ndarray] = {}
        for name, iterator in list(iterators.items()):
            if joins.get(name, 0) > tick:
                continue
            if name not in fleet.streams:
                fleet.add_stream(name, **stream_args.get(name, {}))
            try:
                observations[name] = next(iterator)
            except StopIteration:
                del iterators[name]
        if not observations and not any(
            joins.get(name, 0) > tick for name in iterators
        ):
            break
        results.append(fleet.tick(observations))
        tick += 1
    return fleet, results
