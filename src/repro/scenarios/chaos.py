"""Chaos harness: fault injection for the serving and fleet layers.

The scenario DSL perturbs the *data*; this module perturbs the *system*.
Each helper injects one production failure mode under test control —
deterministically, so fixed-seed tier-1 tests can assert the exact
invariant the architecture promises:

* :func:`kill_and_restore` — checkpoint a fleet, throw the process state
  away, rebuild from disk onto a fresh server.  Invariant: the restored
  fleet continues bit-identically (a drift that was unfolding at the kill
  fires at the same step it would have without the kill).
* :class:`PredictFault` — an :attr:`InferenceServer.fault_injector` hook
  that makes a chosen deployment's model pass raise, or hang until
  released, on a chosen call.  Invariants: zero dropped futures (failed
  ticks log ``stream_predict_failed`` and the fleet keeps lock-step), and
  a bounded :meth:`InferenceServer.stop` that fails stranded futures with
  :class:`~repro.serving.ServerStopped` instead of hanging.
* :class:`FlakyRefit` — wraps a fleet refit function so its background
  thread dies on a chosen call.  Invariant: the failure surfaces as a
  ``region_refit_failed`` event and the fleet keeps serving.
* :func:`thrash_cache` — floods the shared prediction cache with unique
  windows to force eviction churn.  Invariant: results stay correct and
  every future resolves while the cache turns over.

:class:`ChaosSchedule` strings such actions onto fleet ticks for the
:func:`~repro.scenarios.driver.run_fleet_scenario` driver.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.obs.events import log_event

#: A chaos action: called as ``action(fleet, tick)``; returning a fleet
#: replaces the one being driven (how kill-and-restore swaps processes).
ChaosAction = Callable[[Any, int], Optional[Any]]


class ChaosSchedule:
    """Tick-indexed chaos actions for the fleet scenario driver.

    Register actions with :meth:`at` (chainable); the driver calls
    :meth:`fire` at the top of every tick.  An action returning a new fleet
    object replaces the driven fleet from that tick on.
    """

    def __init__(self) -> None:
        self._actions: Dict[int, List[ChaosAction]] = {}

    def at(self, tick: int, action: ChaosAction) -> "ChaosSchedule":
        self._actions.setdefault(int(tick), []).append(action)
        return self

    def fire(self, fleet: Any, tick: int) -> Any:
        """Run every action due at ``tick``; returns the (possibly new) fleet."""
        for action in self._actions.get(int(tick), ()):
            replacement = action(fleet, tick)
            if replacement is not None:
                fleet = replacement
        return fleet

    def __len__(self) -> int:
        return sum(len(actions) for actions in self._actions.values())


# ---------------------------------------------------------------------- #
# Kill-and-restore
# ---------------------------------------------------------------------- #
def kill_and_restore(
    fleet: Any,
    directory: Union[str, Path],
    server: Any,
    **load_kwargs: Any,
) -> Any:
    """Checkpoint ``fleet``, kill its process state, rebuild onto ``server``.

    ``server`` is a fresh, started server — the restarted process's.  The
    old fleet's server is stopped (the "kill"); behaviour-bearing kwargs
    (``detector_factory``, ``refit_fn``, ...) must be re-supplied through
    ``load_kwargs`` exactly as :func:`repro.fleet.checkpoint.load_fleet`
    documents: behaviour lives in code, state in the checkpoint.
    """
    directory = Path(directory)
    log_event("chaos.kill_and_restore", directory=str(directory))
    fleet.save(directory)
    old_server = getattr(fleet, "server", None)
    if old_server is not None and hasattr(old_server, "stop"):
        old_server.stop()
    return type(fleet).load(directory, server, **load_kwargs)


def scheduled_kill_and_restore(
    directory: Union[str, Path],
    server_factory: Callable[[], Any],
    **load_kwargs: Any,
) -> ChaosAction:
    """A :class:`ChaosSchedule` action running :func:`kill_and_restore`.

    ``server_factory`` builds and starts the replacement server when the
    action fires (building it eagerly would mean running two servers for
    the whole pre-kill phase).
    """

    def action(fleet: Any, tick: int) -> Any:
        return kill_and_restore(fleet, directory, server_factory(), **load_kwargs)

    return action


# ---------------------------------------------------------------------- #
# Serving-layer faults
# ---------------------------------------------------------------------- #
class PredictFault:
    """Deterministic fault injector for ``InferenceServer.fault_injector``.

    Fires on the ``on_call``-th matching model pass (counting only calls
    whose deployment matches ``deployment``, or every call when ``None``)
    and keeps firing for ``count`` consecutive matches (``None`` = forever).
    ``error`` raises into the batch's normal failure path; ``hang=True``
    blocks the worker until :meth:`release` — the hung-model simulation the
    bounded-shutdown test drives.
    """

    def __init__(
        self,
        error: Optional[BaseException] = None,
        hang: bool = False,
        on_call: int = 1,
        count: Optional[int] = 1,
        deployment: Optional[str] = None,
    ) -> None:
        if (error is None) == (not hang):
            raise ValueError("give exactly one of error= or hang=True")
        if on_call < 1 or (count is not None and count < 1):
            raise ValueError("on_call and count must be >= 1")
        self.error = error
        self.hang = bool(hang)
        self.on_call = int(on_call)
        self.count = count
        self.deployment = deployment
        self.calls = 0
        self.fired = 0
        self._lock = threading.Lock()
        self._release = threading.Event()

    def release(self) -> None:
        """Unblock every hanging model pass (test teardown MUST call this)."""
        self._release.set()

    def __call__(self, deployment_name: str, stacked: np.ndarray) -> None:
        if self.deployment is not None and deployment_name != self.deployment:
            return
        with self._lock:
            self.calls += 1
            due = self.calls >= self.on_call and (
                self.count is None or self.calls < self.on_call + self.count
            )
            if due:
                self.fired += 1
        if not due:
            return
        log_event(
            "chaos.predict_fault",
            deployment=deployment_name,
            mode="hang" if self.hang else type(self.error).__name__,
            call=self.calls,
        )
        if self.hang:
            self._release.wait()
            return
        raise self.error


class FlakyRefit:
    """Wrap a fleet ``refit_fn`` so a chosen call dies (thread and all).

    The coordinator runs refits on background threads; a raising wrapped
    call is exactly "the refit thread died mid-trial" — the exception is
    recorded, surfaces as a ``region_refit_failed`` fleet event on the next
    tick, and the incumbent keeps serving.
    """

    def __init__(
        self,
        refit_fn: Callable[[str, Dict[str, np.ndarray]], Any],
        fail_on: int = 1,
        error: Optional[BaseException] = None,
    ) -> None:
        self.refit_fn = refit_fn
        self.fail_on = int(fail_on)
        self.error = error if error is not None else RuntimeError("chaos: refit died")
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, region: str, recents: Dict[str, np.ndarray]) -> Any:
        with self._lock:
            self.calls += 1
            dies = self.calls == self.fail_on
        if dies:
            log_event(
                "chaos.flaky_refit",
                region=region,
                call=self.calls,
                error=type(self.error).__name__,
            )
            raise self.error
        return self.refit_fn(region, recents)


def thrash_cache(
    server: Any,
    num_windows: int,
    history: int,
    num_nodes: int,
    seed: int = 0,
    timeout: Optional[float] = 30.0,
) -> List[Any]:
    """Churn the server's shared cache with ``num_windows`` unique windows.

    Every submitted window is distinct (seeded uniform draws), so each one
    misses, runs the model and inserts — on a small cache that forces
    fair-share eviction of whatever the real workload had warmed.  Blocks
    until every future resolves and returns the results, so the invariant
    "thrash drops nothing" is checked by construction.
    """
    rng = np.random.default_rng(seed)
    log_event("chaos.thrash_cache", num_windows=int(num_windows), seed=int(seed))
    windows = rng.uniform(0.0, 500.0, size=(int(num_windows), history, num_nodes))
    futures = server.submit_many(list(windows))
    return [future.result(timeout=timeout) for future in futures]
