"""Scenario DSL and chaos harness for the streaming/fleet stack.

Two composable halves:

* :mod:`repro.scenarios.dsl` — declarative, file-loadable
  (:func:`load_scenario`, JSON or INI) stream scenarios built from traffic
  primitives.  The three canonical scripted feeds compile **bit-identically**
  to their hand-coded ``StreamingTrafficFeed.scenario`` counterparts
  (:func:`legacy_scenario`), and six extended primitives add holiday/seasonal
  cycles, sensor clock skew, stuck sensors, adversarial spikes, cold-start
  corridors and cascading multi-region incidents;
* :mod:`repro.scenarios.chaos` — deterministic system-level fault injection
  (kill-and-restore from checkpoint, raising/hanging model passes, dying
  refit threads, cache thrash) plus the :class:`ChaosSchedule` /
  :func:`run_fleet_scenario` driver that scripts them onto fleet ticks.

Quick taste::

    spec = load_scenario("scenarios/holiday_regime.json")
    feed = spec.build(network)                      # a StreamingTrafficFeed

    chaos = ChaosSchedule().at(
        120, scheduled_kill_and_restore(ckpt_dir, make_server,
                                        detector_factory=detectors)
    )
    fleet, results = run_fleet_scenario(fleet, feeds, chaos=chaos)
"""

from repro.scenarios.chaos import (
    ChaosSchedule,
    FlakyRefit,
    PredictFault,
    kill_and_restore,
    scheduled_kill_and_restore,
    thrash_cache,
)
from repro.scenarios.driver import run_fleet_scenario
from repro.scenarios.dsl import (
    LEGACY_KINDS,
    PRIMITIVE_DEFAULTS,
    ScenarioSpec,
    legacy_scenario,
    load_scenario,
    parse_scenario_ini,
    parse_scenario_json,
)

__all__ = [
    "ScenarioSpec",
    "legacy_scenario",
    "load_scenario",
    "parse_scenario_json",
    "parse_scenario_ini",
    "LEGACY_KINDS",
    "PRIMITIVE_DEFAULTS",
    "ChaosSchedule",
    "PredictFault",
    "FlakyRefit",
    "kill_and_restore",
    "scheduled_kill_and_restore",
    "thrash_cache",
    "run_fleet_scenario",
]
