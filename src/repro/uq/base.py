"""Common scaffolding for the uncertainty-quantification methods."""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.inference import PredictionResult
from repro.core.trainer import TrainingConfig
from repro.core.windowing import WindowedForecaster
from repro.data.datasets import TrafficData
from repro.data.scalers import StandardScaler
from repro.models.base import ForecastModel
from repro.utils.serialization import pack_state_arrays, unpack_state_arrays


class UQMethod(WindowedForecaster):
    """Base class: an uncertainty-aware forecaster over a fixed road network.

    Sub-classes set the class attributes ``name``, ``paradigm``,
    ``uncertainty_type`` (the Table II taxonomy) and ``required_heads`` (the
    decoder heads their loss needs), implement :meth:`fit` and
    :meth:`predict`, and typically build their backbone through
    :meth:`_build_backbone`.

    The backbone is configuration, not code: every method defaults to the
    paper's shared AGCRN architecture, but any name from
    :data:`repro.models.registry.BACKBONE_INFO` can be requested instead
    (``backbone="DCRNN"`` plus an ``adjacency`` matrix, for example).
    Backbones without native head support are wrapped in a
    :class:`~repro.models.heads.HeadAdapter` so ``required_heads`` is always
    satisfied.
    """

    name: str = "abstract"
    paradigm: str = "abstract"
    uncertainty_type: str = "none"
    #: Whether the predictive distribution is Gaussian (MNLL is meaningful).
    gaussian_likelihood: bool = True
    #: Decoder heads the method's loss/predict contract needs.
    required_heads: Tuple[str, ...] = ("mean",)

    #: ``_rng`` only seeds weight *initialization*; the checkpointed weights
    #: already encode its effect, and predict-time draws use per-call
    #: generators, so a restored instance never consults it.
    _CHECKPOINT_EXEMPT = ("_rng",)

    def __init__(
        self,
        num_nodes: int,
        config: Optional[TrainingConfig] = None,
        rng: Optional[np.random.Generator] = None,
        backbone: str = "AGCRN",
        backbone_kwargs: Optional[Dict[str, Any]] = None,
        adjacency: Optional[np.ndarray] = None,
    ) -> None:
        self.num_nodes = num_nodes
        self.config = config if config is not None else TrainingConfig()
        self._rng = rng if rng is not None else np.random.default_rng(self.config.seed)
        self._configure_backbone(backbone, backbone_kwargs, adjacency)
        self.scaler: Optional[StandardScaler] = None
        self.fitted = False

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    @property
    def window_config(self) -> TrainingConfig:
        return self.config

    @property
    def _display_name(self) -> str:
        return self.name

    def _build_backbone(self, heads: Optional[Sequence[str]] = None) -> ForecastModel:
        """The configured base model with the requested (or required) heads."""
        from repro.models.registry import create_backbone

        return create_backbone(
            self.backbone_name,
            num_nodes=self.num_nodes,
            config=self.config,
            heads=tuple(heads) if heads is not None else self.required_heads,
            adjacency=self.adjacency,
            rng=self._rng,
            **self.backbone_kwargs,
        )

    # ------------------------------------------------------------------ #
    # Interface
    # ------------------------------------------------------------------ #
    def fit(self, train_data: TrafficData, val_data: TrafficData) -> "UQMethod":
        """Train on the training split (and calibrate on the validation split)."""
        raise NotImplementedError

    def predict(self, histories: np.ndarray) -> PredictionResult:
        """Probabilistic forecast for raw history windows (original scale)."""
        raise NotImplementedError

    def serve(self, model_version: Optional[str] = None, **kwargs):
        """Build an (unstarted) :class:`~repro.serving.InferenceServer` over this method.

        Keyword arguments are forwarded to the server constructor
        (``max_batch_size``, ``max_wait_ms``, ``cache_size``, ``num_workers``).
        """
        self._check_fitted()
        from repro.serving import serve_method

        return serve_method(self, model_version=model_version, **kwargs)

    # ------------------------------------------------------------------ #
    # Full-state checkpointing
    # ------------------------------------------------------------------ #
    def get_state(self) -> Dict[str, Any]:
        """Everything a fresh instance needs to reproduce :meth:`predict`.

        Returns ``{"meta": <JSON-able scalars>, "arrays": <named ndarrays>}``.
        The base implementation covers the fitted scaler and the single
        ``self.model`` backbone; methods with extra inference state
        (temperature, conformal quantiles, ensemble members, snapshots)
        extend both parts in their overrides.
        """
        self._check_fitted()
        meta: Dict[str, Any] = {
            "method": self.name,
            "backbone": self.backbone_name,
            "fitted": True,
        }
        scaler_state = self._scaler_state()
        if scaler_state is not None:
            meta["scaler"] = scaler_state
        arrays: Dict[str, np.ndarray] = {}
        model = getattr(self, "model", None)
        if model is not None:
            arrays.update(pack_state_arrays("model.", model.state_dict()))
        return {"meta": meta, "arrays": arrays}

    def set_state(self, state: Dict[str, Any]) -> "UQMethod":
        """Restore a :meth:`get_state` snapshot into this (configured) instance.

        The instance must have been constructed with the same configuration
        (heads, backbone, architecture hyper-parameters) as the saved one;
        the method and backbone names are validated, and weight loading
        rejects mismatched parameter sets.
        """
        meta = state["meta"]
        arrays = state["arrays"]
        self._check_saved_method(meta)
        self._check_saved_backbone(meta)
        self._restore_scaler(meta.get("scaler"))
        model_state = unpack_state_arrays("model.", arrays)
        if model_state:
            if getattr(self, "model", None) is None:
                self.model = self._make_model_for_state()
            self.model.load_state_dict(model_state)
        self.fitted = bool(meta.get("fitted", True))
        return self

    def _check_saved_method(self, meta: Dict[str, Any]) -> None:
        """Reject state snapshots taken by a different UQ method."""
        if meta.get("method") != self.name:
            raise ValueError(
                f"state was saved by method {meta.get('method')!r}, "
                f"cannot restore into {self.name!r}"
            )

    def _make_model_for_state(self) -> ForecastModel:
        """Build the (untrained) model that :meth:`set_state` loads weights into."""
        return self._build_backbone()

    def __repr__(self) -> str:
        return (
            f"{self.__class__.__name__}(paradigm={self.paradigm!r}, "
            f"uncertainty={self.uncertainty_type!r}, backbone={self.backbone_name!r})"
        )
