"""Common scaffolding for the uncertainty-quantification methods."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.inference import PredictionResult
from repro.core.trainer import TrainingConfig
from repro.data.datasets import SlidingWindowDataset, TrafficData
from repro.data.scalers import StandardScaler
from repro.models.agcrn import AGCRN


class UQMethod:
    """Base class: an uncertainty-aware forecaster over a fixed road network.

    Sub-classes set the class attributes ``name``, ``paradigm`` and
    ``uncertainty_type`` (the Table II taxonomy), implement :meth:`fit`
    and :meth:`predict`, and typically build their backbone through
    :meth:`_build_backbone` so every method shares the AGCRN architecture.
    """

    name: str = "abstract"
    paradigm: str = "abstract"
    uncertainty_type: str = "none"
    #: Whether the predictive distribution is Gaussian (MNLL is meaningful).
    gaussian_likelihood: bool = True

    def __init__(
        self,
        num_nodes: int,
        config: Optional[TrainingConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.num_nodes = num_nodes
        self.config = config if config is not None else TrainingConfig()
        self._rng = rng if rng is not None else np.random.default_rng(self.config.seed)
        self.scaler: Optional[StandardScaler] = None
        self.fitted = False

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _build_backbone(self, heads: Tuple[str, ...]) -> AGCRN:
        """The shared AGCRN base model with the requested output heads."""
        cfg = self.config
        return AGCRN(
            num_nodes=self.num_nodes,
            history=cfg.history,
            horizon=cfg.horizon,
            hidden_dim=cfg.hidden_dim,
            embed_dim=cfg.embed_dim,
            cheb_k=cfg.cheb_k,
            num_layers=cfg.num_layers,
            encoder_dropout=cfg.encoder_dropout,
            decoder_dropout=cfg.decoder_dropout,
            heads=heads,
            rng=self._rng,
        )

    def _fit_scaler(self, train_data: TrafficData) -> StandardScaler:
        self.scaler = StandardScaler().fit(train_data.values)
        return self.scaler

    def _windows(self, data: TrafficData) -> Tuple[np.ndarray, np.ndarray]:
        dataset = SlidingWindowDataset(data, history=self.config.history, horizon=self.config.horizon)
        return dataset.arrays()

    def _scale_inputs(self, histories: np.ndarray) -> np.ndarray:
        if self.scaler is None:
            raise RuntimeError(f"{self.name} must be fitted before predicting")
        return self.scaler.transform(np.asarray(histories, dtype=np.float64))

    def _check_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError(f"{self.name} must be fitted before predicting")

    # ------------------------------------------------------------------ #
    # Interface
    # ------------------------------------------------------------------ #
    def fit(self, train_data: TrafficData, val_data: TrafficData) -> "UQMethod":
        """Train on the training split (and calibrate on the validation split)."""
        raise NotImplementedError

    def predict(self, histories: np.ndarray) -> PredictionResult:
        """Probabilistic forecast for raw history windows (original scale)."""
        raise NotImplementedError

    def predict_on(self, data: TrafficData) -> Tuple[PredictionResult, np.ndarray]:
        """Forecast every sliding window of ``data``; returns (result, targets)."""
        inputs, targets = self._windows(data)
        return self.predict(inputs), targets

    def serve(self, model_version: Optional[str] = None, **kwargs):
        """Build an (unstarted) :class:`~repro.serving.InferenceServer` over this method.

        Keyword arguments are forwarded to the server constructor
        (``max_batch_size``, ``max_wait_ms``, ``cache_size``, ``num_workers``).
        """
        self._check_fitted()
        from repro.serving import serve_method

        return serve_method(self, model_version=model_version, **kwargs)

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}(paradigm={self.paradigm!r}, uncertainty={self.uncertainty_type!r})"
