"""Combined aleatoric + epistemic estimation (Kendall & Gal, 2017).

Mean / log-variance heads are trained with the combined loss (Eq. 14) and at
test time MC dropout sampling decomposes the predictive variance into the
mean of the predicted variances (aleatoric) plus the variance of the
predicted means (epistemic) — i.e. DeepSTUQ *without* AWA re-training and
without calibration.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.inference import PredictionResult, monte_carlo_forecast
from repro.core.losses import combined_loss
from repro.core.trainer import Trainer
from repro.data.datasets import TrafficData
from repro.uq.base import UQMethod


class Combined(UQMethod):
    """Heteroscedastic heads + MC dropout at inference."""

    name = "Combined"
    paradigm = "Bayesian"
    uncertainty_type = "aleatoric + epistemic"
    required_heads = ("mean", "log_var")

    def fit(self, train_data: TrafficData, val_data: TrafficData) -> "Combined":
        self._fit_scaler(train_data)
        self.model = self._build_backbone()
        self.trainer = Trainer(
            self.model,
            self.config,
            lambda output, target: combined_loss(
                output["mean"], output["log_var"], target, lambda_weight=self.config.lambda_weight
            ),
            scaler=self.scaler,
        )
        self.trainer.fit(train_data)
        self.fitted = True
        return self

    def predict(
        self,
        histories: np.ndarray,
        num_samples: Optional[int] = None,
        vectorized: bool = True,
    ) -> PredictionResult:
        self._check_fitted()
        samples = num_samples if num_samples is not None else self.config.mc_samples
        return monte_carlo_forecast(
            self.model,
            self._scale_inputs(histories),
            self.scaler,
            num_samples=samples,
            rng=np.random.default_rng(self.config.seed + 11),
            vectorized=vectorized,
        )
