"""DeepSTUQ — the paper's unified method, exposed through the UQMethod API.

Thin wrapper around :class:`~repro.core.pipeline.DeepSTUQPipeline` so the
benchmark harness can treat it exactly like the baselines.  ``predict``
performs the Monte-Carlo forecast of Eq. 19 (default 10 samples); the
``single_pass`` flag switches to DeepSTUQ/S, i.e. one deterministic forward
pass at roughly the inference cost of a point model.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

import numpy as np

from repro.core.awa import AWAConfig
from repro.core.inference import PredictionResult
from repro.core.pipeline import DeepSTUQConfig, DeepSTUQPipeline
from repro.core.trainer import TrainingConfig
from repro.data.datasets import TrafficData
from repro.uq.base import UQMethod


class DeepSTUQ(UQMethod):
    """Unified aleatoric + epistemic UQ with AWA re-training and calibration."""

    name = "DeepSTUQ"
    paradigm = "Bayesian + ensembling"
    uncertainty_type = "aleatoric + epistemic"
    required_heads = ("mean", "log_var")

    def __init__(
        self,
        num_nodes: int,
        config: Optional[TrainingConfig] = None,
        awa_config: Optional[Union[AWAConfig, Dict[str, Any]]] = None,
        use_awa: bool = True,
        use_calibration: bool = True,
        rng: Optional[np.random.Generator] = None,
        backbone: str = "AGCRN",
        backbone_kwargs: Optional[Dict[str, Any]] = None,
        adjacency=None,
    ) -> None:
        super().__init__(
            num_nodes,
            config,
            rng,
            backbone=backbone,
            backbone_kwargs=backbone_kwargs,
            adjacency=adjacency,
        )
        if isinstance(awa_config, dict):
            awa_config = AWAConfig(**awa_config)
        pipeline_config = DeepSTUQConfig(
            training=self.config,
            awa=awa_config if awa_config is not None else AWAConfig(),
            use_awa=use_awa,
            use_calibration=use_calibration,
        )
        self.pipeline = DeepSTUQPipeline(
            num_nodes,
            pipeline_config,
            rng=self._rng,
            backbone=self.backbone_name,
            backbone_kwargs=self.backbone_kwargs,
            adjacency=self.adjacency,
        )

    @property
    def temperature(self) -> float:
        """The fitted calibration temperature (1.0 before calibration)."""
        return self.pipeline.calibrator.temperature

    def fit(self, train_data: TrafficData, val_data: TrafficData) -> "DeepSTUQ":
        self.pipeline.fit(train_data, val_data)
        self.scaler = self.pipeline.scaler
        self.fitted = True
        return self

    def predict(
        self,
        histories: np.ndarray,
        num_samples: Optional[int] = None,
        single_pass: bool = False,
        vectorized: bool = True,
    ) -> PredictionResult:
        self._check_fitted()
        if single_pass:
            return self.pipeline.predict_single_pass(np.asarray(histories, dtype=np.float64))
        return self.pipeline.predict(
            np.asarray(histories, dtype=np.float64),
            num_samples=num_samples,
            vectorized=vectorized,
        )

    def predict_single_pass(self, histories: np.ndarray) -> PredictionResult:
        """DeepSTUQ/S: single deterministic forward pass (Table III column)."""
        return self.predict(histories, single_pass=True)

    # ------------------------------------------------------------------ #
    def get_state(self) -> Dict[str, Any]:
        """Full pipeline state: backbone weights + scaler + temperature."""
        self._check_fitted()
        state = self.pipeline.get_state()
        state["meta"]["method"] = self.name
        return state

    def set_state(self, state: Dict[str, Any]) -> "DeepSTUQ":
        self._check_saved_method(state["meta"])
        self.pipeline.set_state(state)
        self.scaler = self.pipeline.scaler
        self.fitted = self.pipeline.fitted
        return self
