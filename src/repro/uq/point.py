"""Deterministic point forecaster (the "Point" row of Table IV).

This is the plain AGCRN model trained with an L1 loss: the strongest point
baseline, used as the reference against which the uncertainty-aware methods'
point accuracy is compared.  It produces no uncertainty estimate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.inference import PredictionResult, deterministic_forecast
from repro.core.losses import point_l1_loss
from repro.core.trainer import Trainer
from repro.data.datasets import TrafficData
from repro.uq.base import UQMethod


class PointForecaster(UQMethod):
    """AGCRN with a single mean head and MAE loss; no uncertainty."""

    name = "Point"
    paradigm = "deterministic"
    uncertainty_type = "no"
    gaussian_likelihood = False
    required_heads = ("mean",)

    def fit(self, train_data: TrafficData, val_data: TrafficData) -> "PointForecaster":
        self._fit_scaler(train_data)
        self.model = self._build_backbone()
        self.trainer = Trainer(
            self.model,
            self.config,
            lambda output, target: point_l1_loss(output, target),
            scaler=self.scaler,
        )
        self.trainer.fit(train_data)
        self.fitted = True
        return self

    def predict(self, histories: np.ndarray) -> PredictionResult:
        self._check_fitted()
        return deterministic_forecast(self.model, self._scale_inputs(histories), self.scaler)
