"""Uncertainty-quantification methods evaluated in the paper (Table II / IV).

Every method wraps the *same* AGCRN base architecture (Section V-C2: "all
the following methods employ the same base model structure for fair
comparison") and differs only in its output heads, training loss, sampling
strategy and calibration:

==============  ===================  =========================
Class           Paradigm             Uncertainty type
==============  ===================  =========================
PointForecaster deterministic        none
QuantileRegression distribution-free aleatoric
MVE             frequentist          aleatoric
MCDropout       Bayesian             epistemic
Combined        Bayesian             aleatoric + epistemic
TemperatureScaledMVE frequentist     aleatoric
FGE             ensembling           epistemic
DeepEnsemble    ensembling           aleatoric + epistemic
LocallyWeightedConformal frequentist aleatoric
CFRNN           distribution-free    aleatoric
DeepSTUQ        Bayesian + ensembling aleatoric + epistemic
==============  ===================  =========================
"""

from repro.uq.base import UQMethod
from repro.uq.point import PointForecaster
from repro.uq.quantile import QuantileRegression
from repro.uq.mve import MVE
from repro.uq.mc_dropout import MCDropout
from repro.uq.combined import Combined
from repro.uq.temperature import TemperatureScaledMVE
from repro.uq.fge import FGE
from repro.uq.deep_ensemble import DeepEnsemble
from repro.uq.conformal import LocallyWeightedConformal
from repro.uq.cfrnn import CFRNN
from repro.uq.deepstuq import DeepSTUQ
from repro.uq.registry import METHOD_INFO, available_methods, create_method, method_info

__all__ = [
    "UQMethod",
    "PointForecaster",
    "QuantileRegression",
    "MVE",
    "MCDropout",
    "Combined",
    "TemperatureScaledMVE",
    "FGE",
    "DeepEnsemble",
    "LocallyWeightedConformal",
    "CFRNN",
    "DeepSTUQ",
    "METHOD_INFO",
    "available_methods",
    "create_method",
    "method_info",
]
