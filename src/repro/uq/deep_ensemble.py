"""Vanilla deep ensembles (Lakshminarayanan et al., 2017).

Not part of the paper's Table IV but included as the reference that AWA
approximates: ``M`` independently initialized heteroscedastic models are
trained from scratch and their Gaussian predictions are combined into a
mixture (mean of means; aleatoric = mean of variances; epistemic = variance
of means).  The ablation benchmarks compare its cost and accuracy against
AWA re-training.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.inference import PredictionResult, deterministic_forecast, ensemble_forecast
from repro.core.losses import combined_loss
from repro.core.trainer import Trainer
from repro.data.datasets import TrafficData
from repro.models.base import ForecastModel
from repro.uq.base import UQMethod


class DeepEnsemble(UQMethod):
    """Ensemble of independently trained heteroscedastic AGCRN models."""

    name = "DeepEnsemble"
    paradigm = "ensembling"
    uncertainty_type = "aleatoric + epistemic"
    required_heads = ("mean", "log_var")

    def __init__(self, *args, num_members: int = 3, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if num_members < 2:
            raise ValueError("an ensemble needs at least 2 members")
        self.num_members = num_members
        self.members: List[ForecastModel] = []

    def fit(self, train_data: TrafficData, val_data: TrafficData) -> "DeepEnsemble":
        self._fit_scaler(train_data)
        self.members = []
        loss_fn = lambda output, target: combined_loss(  # noqa: E731
            output["mean"], output["log_var"], target, lambda_weight=self.config.lambda_weight
        )
        for member_index in range(self.num_members):
            self._rng = np.random.default_rng(self.config.seed + 100 + member_index)
            model = self._build_backbone()
            trainer = Trainer(model, self.config, loss_fn, scaler=self.scaler)
            trainer.fit(train_data)
            self.members.append(model)
        self.fitted = True
        return self

    # ------------------------------------------------------------------ #
    def get_state(self) -> Dict[str, Any]:
        from repro.utils.serialization import pack_state_arrays

        state = super().get_state()
        state["meta"]["num_members"] = len(self.members)
        for index, member in enumerate(self.members):
            state["arrays"].update(pack_state_arrays(f"members.{index}.", member.state_dict()))
        return state

    def set_state(self, state: Dict[str, Any]) -> "DeepEnsemble":
        from repro.utils.serialization import unpack_state_arrays

        count = int(state["meta"]["num_members"])
        if count != self.num_members:
            raise ValueError(
                f"state holds {count} ensemble members but this instance was "
                f"configured with num_members={self.num_members}"
            )
        super().set_state(state)
        self.members = []
        for index in range(count):
            member = self._build_backbone()
            member.load_state_dict(unpack_state_arrays(f"members.{index}.", state["arrays"]))
            self.members.append(member)
        return self

    def predict(self, histories: np.ndarray, vectorized: bool = True) -> PredictionResult:
        self._check_fitted()
        scaled = self._scale_inputs(histories)
        if vectorized:
            return ensemble_forecast(self.members, scaled, self.scaler)
        # Reference path: explicit per-member accumulation of the mixture moments.
        means, variances = [], []
        for model in self.members:
            result = deterministic_forecast(model, scaled, self.scaler)
            means.append(result.mean)
            variances.append(result.aleatoric_var)
        stacked_means = np.stack(means, axis=0)
        mean = stacked_means.mean(axis=0)
        aleatoric = np.stack(variances, axis=0).mean(axis=0)
        if len(self.members) > 1:
            epistemic = stacked_means.var(axis=0, ddof=1)
        else:
            epistemic = np.zeros_like(mean)
        return PredictionResult(mean=mean, aleatoric_var=aleatoric, epistemic_var=epistemic)
