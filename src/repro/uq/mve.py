"""Mean-Variance Estimation (Nix & Weigend, 1994) — frequentist aleatoric UQ.

Two independent output heads predict the mean and the log-variance of a
Gaussian predictive distribution; training maximizes the heterogeneous
log-likelihood with the L1 regularizer of paper Eq. 9.  At test time a single
deterministic forward pass (dropout off) produces the forecast, so only
aleatoric uncertainty is quantified.
"""

from __future__ import annotations

import numpy as np

from repro.core.inference import PredictionResult, deterministic_forecast
from repro.core.losses import combined_loss
from repro.core.trainer import Trainer
from repro.data.datasets import TrafficData
from repro.uq.base import UQMethod


class MVE(UQMethod):
    """AGCRN with mean + log-variance heads trained on Eq. 9."""

    name = "MVE"
    paradigm = "frequentist"
    uncertainty_type = "aleatoric"
    required_heads = ("mean", "log_var")

    def fit(self, train_data: TrafficData, val_data: TrafficData) -> "MVE":
        self._fit_scaler(train_data)
        self.model = self._build_backbone()
        self.trainer = Trainer(
            self.model,
            self.config,
            lambda output, target: combined_loss(
                output["mean"], output["log_var"], target, lambda_weight=self.config.lambda_weight
            ),
            scaler=self.scaler,
        )
        self.trainer.fit(train_data)
        self.fitted = True
        return self

    def predict(self, histories: np.ndarray) -> PredictionResult:
        self._check_fitted()
        return deterministic_forecast(self.model, self._scale_inputs(histories), self.scaler)
