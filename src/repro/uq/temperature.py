"""Temperature Scaling baseline (Guo et al., 2017) applied to MVE.

An MVE model is trained as usual, then a single temperature parameter is
fitted on the validation split (Eqs. 17-18) and applied to the predicted
variance at test time — the "TS" row of Table IV.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.core.calibration import TemperatureCalibrator
from repro.core.inference import PredictionResult
from repro.data.datasets import TrafficData
from repro.uq.mve import MVE


class TemperatureScaledMVE(MVE):
    """MVE whose aleatoric variance is calibrated with temperature scaling."""

    name = "TS"
    paradigm = "frequentist"
    uncertainty_type = "aleatoric"

    def __init__(self, *args, calibration_max_iter: int = 500, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.calibrator = TemperatureCalibrator(max_iter=calibration_max_iter)

    def fit(self, train_data: TrafficData, val_data: TrafficData) -> "TemperatureScaledMVE":
        super().fit(train_data, val_data)
        inputs, targets = self._windows(val_data)
        uncalibrated = super().predict(inputs)
        self.calibrator.fit(
            targets, uncalibrated.mean, np.maximum(uncalibrated.aleatoric_var, 1e-8)
        )
        return self

    def predict(self, histories: np.ndarray) -> PredictionResult:
        result = super().predict(histories)
        return PredictionResult(
            mean=result.mean,
            aleatoric_var=self.calibrator.calibrate_variance(result.aleatoric_var),
            epistemic_var=result.epistemic_var,
        )

    # ------------------------------------------------------------------ #
    def get_state(self) -> Dict[str, Any]:
        state = super().get_state()
        state["meta"]["temperature"] = self.calibrator.temperature
        state["meta"]["calibrator_fitted"] = self.calibrator.fitted
        return state

    def set_state(self, state: Dict[str, Any]) -> "TemperatureScaledMVE":
        super().set_state(state)
        self.calibrator.temperature = float(state["meta"]["temperature"])
        self.calibrator.fitted = bool(state["meta"].get("calibrator_fitted", True))
        return self
