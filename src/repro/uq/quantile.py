"""Quantile-regression baseline (distribution-free aleatoric uncertainty).

Three output heads predict the 2.5%, 50% and 97.5% quantiles directly by
minimizing the pinball loss (Koenker & Hallock, 2001); the 95% prediction
interval is the (lower, upper) pair and the point forecast is the median.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.inference import PredictionResult, _batched_forward
from repro.core.losses import quantile_loss
from repro.core.trainer import Trainer
from repro.data.datasets import TrafficData
from repro.tensor import no_grad
from repro.uq.base import UQMethod

#: Head name -> quantile level (paper Section V-C2).
QUANTILES: Dict[str, float] = {"lower": 0.025, "mean": 0.5, "upper": 0.975}

#: z-score equivalent of the 97.5% quantile, used to express the interval as
#: a pseudo standard deviation so that the shared metric code can consume it.
_Z_95 = 1.959963984540054


class QuantileRegression(UQMethod):
    """AGCRN with three quantile heads trained with the pinball loss."""

    name = "Quantile"
    paradigm = "distribution-free"
    uncertainty_type = "aleatoric"
    gaussian_likelihood = False
    required_heads = ("lower", "mean", "upper")

    def fit(self, train_data: TrafficData, val_data: TrafficData) -> "QuantileRegression":
        self._fit_scaler(train_data)
        self.model = self._build_backbone()
        self.trainer = Trainer(
            self.model,
            self.config,
            lambda output, target: quantile_loss(output, target, QUANTILES),
            scaler=self.scaler,
        )
        self.trainer.fit(train_data)
        self.fitted = True
        return self

    def predict(self, histories: np.ndarray) -> PredictionResult:
        self._check_fitted()
        scaled_inputs = self._scale_inputs(histories)
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                outputs = _batched_forward(self.model, scaled_inputs, batch_size=256)
        finally:
            if was_training:
                self.model.train()
        mean = self.scaler.inverse_transform(outputs["mean"])
        lower = self.scaler.inverse_transform(outputs["lower"])
        upper = self.scaler.inverse_transform(outputs["upper"])
        # Guard against quantile crossing, then express the interval half-width
        # as a pseudo sigma so downstream interval code can reuse mean +- 1.96 s;
        # the native (asymmetric) bounds ride along for bound-aware consumers
        # such as the streaming conformal layer.
        lower, upper = np.minimum(lower, upper), np.maximum(lower, upper)
        pseudo_std = np.maximum((upper - lower) / (2.0 * _Z_95), 0.0)
        return PredictionResult(
            mean=mean,
            aleatoric_var=pseudo_std ** 2,
            epistemic_var=np.zeros_like(mean),
            lower=lower,
            upper=upper,
        )
