"""Monte-Carlo dropout (Gal & Ghahramani, 2016) — Bayesian epistemic UQ.

The point-forecasting AGCRN is trained with an L1 loss and dropout; at test
time dropout stays active and ``N_MC`` stochastic forward passes approximate
samples from the weight posterior.  Only the epistemic variance (spread of
the sampled means) is quantified, which — as Table IV shows — drastically
under-covers the ground truth because traffic uncertainty is dominated by
the aleatoric component.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.inference import PredictionResult, monte_carlo_forecast
from repro.core.losses import point_l1_loss
from repro.core.trainer import Trainer
from repro.data.datasets import TrafficData
from repro.uq.base import UQMethod


class MCDropout(UQMethod):
    """AGCRN point model with test-time dropout sampling."""

    name = "MCDO"
    paradigm = "Bayesian"
    uncertainty_type = "epistemic"
    required_heads = ("mean",)

    def fit(self, train_data: TrafficData, val_data: TrafficData) -> "MCDropout":
        self._fit_scaler(train_data)
        self.model = self._build_backbone()
        self.trainer = Trainer(
            self.model,
            self.config,
            lambda output, target: point_l1_loss(output, target),
            scaler=self.scaler,
        )
        self.trainer.fit(train_data)
        self.fitted = True
        return self

    def predict(
        self,
        histories: np.ndarray,
        num_samples: Optional[int] = None,
        vectorized: bool = True,
    ) -> PredictionResult:
        self._check_fitted()
        samples = num_samples if num_samples is not None else self.config.mc_samples
        return monte_carlo_forecast(
            self.model,
            self._scale_inputs(histories),
            self.scaler,
            num_samples=samples,
            rng=np.random.default_rng(self.config.seed + 10),
            vectorized=vectorized,
        )
