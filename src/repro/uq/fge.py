"""Fast Geometric Ensembling (Garipov et al., 2018) — ensembling epistemic UQ.

After a standard pre-training phase, the learning rate is cycled (cosine
down-swing per cycle) and a snapshot of the weights is stored at the end of
every cycle; at test time the stored snapshots are evaluated as an ensemble
whose mean and spread give the forecast and the epistemic uncertainty.
Unlike AWA, all snapshots must be kept in memory — the cost the paper's AWA
re-training removes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.inference import PredictionResult, deterministic_forecast
from repro.core.losses import point_l1_loss
from repro.core.trainer import Trainer
from repro.data.datasets import TrafficData
from repro.optim import Adam, CyclicCosineLR
from repro.tensor import Tensor
from repro.uq.base import UQMethod


class FGE(UQMethod):
    """Cyclic-learning-rate snapshot ensemble over the AGCRN point model."""

    name = "FGE"
    paradigm = "ensembling"
    uncertainty_type = "epistemic"
    required_heads = ("mean",)

    def __init__(self, *args, num_snapshots: int = 5, cycle_epochs: int = 2, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if num_snapshots < 2 or cycle_epochs < 1:
            raise ValueError("need at least 2 snapshots and 1 epoch per cycle")
        self.num_snapshots = num_snapshots
        self.cycle_epochs = cycle_epochs
        self.snapshots: List[Dict[str, np.ndarray]] = []

    def fit(self, train_data: TrafficData, val_data: TrafficData) -> "FGE":
        self._fit_scaler(train_data)
        self.model = self._build_backbone()
        loss_fn = lambda output, target: point_l1_loss(output, target)  # noqa: E731
        self.trainer = Trainer(self.model, self.config, loss_fn, scaler=self.scaler)
        self.trainer.fit(train_data)

        # Snapshot phase: cycle the learning rate; snapshot at each cycle end.
        loader = self.trainer.make_loader(train_data, shuffle=True)
        optimizer = Adam(
            self.model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        scheduler = CyclicCosineLR(
            optimizer,
            lr_max=self.config.learning_rate,
            lr_min=self.config.learning_rate * 0.01,
            steps_per_epoch=max(len(loader), 1),
        )
        self.snapshots = []
        for _ in range(self.num_snapshots):
            for _ in range(self.cycle_epochs):
                self.model.train()
                for inputs, targets in loader:
                    scheduler.step()
                    optimizer.zero_grad()
                    loss = loss_fn(self.model(Tensor(inputs)), Tensor(targets))
                    loss.backward()
                    if self.config.grad_clip is not None:
                        optimizer.clip_grad_norm(self.config.grad_clip)
                    optimizer.step()
            self.snapshots.append(self.model.state_dict())
        self.fitted = True
        return self

    # ------------------------------------------------------------------ #
    def get_state(self) -> Dict[str, Any]:
        from repro.utils.serialization import pack_state_arrays

        state = super().get_state()
        state["meta"]["num_snapshots"] = len(self.snapshots)
        for index, snapshot in enumerate(self.snapshots):
            state["arrays"].update(pack_state_arrays(f"snapshots.{index}.", snapshot))
        return state

    def set_state(self, state: Dict[str, Any]) -> "FGE":
        from repro.utils.serialization import unpack_state_arrays

        super().set_state(state)
        count = int(state["meta"]["num_snapshots"])
        self.snapshots = [
            unpack_state_arrays(f"snapshots.{index}.", state["arrays"])
            for index in range(count)
        ]
        return self

    def predict(self, histories: np.ndarray) -> PredictionResult:
        self._check_fitted()
        scaled = self._scale_inputs(histories)
        member_means = []
        original_state = self.model.state_dict()
        try:
            for snapshot in self.snapshots:
                self.model.load_state_dict(snapshot)
                member_means.append(
                    deterministic_forecast(self.model, scaled, self.scaler).mean
                )
        finally:
            self.model.load_state_dict(original_state)
        stacked = np.stack(member_means, axis=0)
        mean = stacked.mean(axis=0)
        epistemic = stacked.var(axis=0, ddof=1) if len(member_means) > 1 else np.zeros_like(mean)
        return PredictionResult(
            mean=mean, aleatoric_var=np.zeros_like(mean), epistemic_var=epistemic
        )
