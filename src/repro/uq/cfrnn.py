"""CFRNN — Conformal Forecasting RNN (Stankeviciute et al., NeurIPS 2021).

A plain (graph-free) GRU forecaster is trained on the multivariate series;
multi-horizon prediction intervals are obtained by conformal prediction with
a Bonferroni-style split of the miscoverage budget across horizon steps: for
each step ``h`` the interval half-width is the corrected quantile of the
absolute calibration residuals at that step.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro import nn
from repro.core.inference import PredictionResult
from repro.core.losses import point_l1_loss
from repro.core.trainer import Trainer
from repro.data.datasets import TrafficData
from repro.metrics.uncertainty import Z_95
from repro.models.base import ForecastModel
from repro.tensor import Tensor, no_grad
from repro.uq.base import UQMethod


class _VectorGRUForecaster(ForecastModel):
    """GRU over the full sensor vector (no graph structure)."""

    def __init__(self, num_nodes: int, history: int, horizon: int, hidden_dim: int, rng=None):
        super().__init__(num_nodes, history, horizon)
        self.gru = nn.GRU(num_nodes, hidden_dim, rng=rng)
        self.head = nn.Linear(hidden_dim, horizon * num_nodes, rng=rng)

    def forward(self, x) -> Tensor:
        x = self._validate_input(x)
        _, final = self.gru(x)
        out = self.head(final)
        return out.reshape(x.shape[0], self.horizon, self.num_nodes)


class CFRNN(UQMethod):
    """Graph-free GRU + per-horizon conformal intervals."""

    name = "CFRNN"
    paradigm = "distribution-free"
    uncertainty_type = "aleatoric"
    gaussian_likelihood = False
    required_heads = ("mean",)

    def __init__(self, *args, significance: float = 0.05, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # CFRNN's identity *is* its graph-free GRU: it never builds the shared
        # backbone, so a requested alternative would be silently ignored.
        if self.backbone_name != "AGCRN":
            raise ValueError(
                "CFRNN defines its own graph-free GRU forecaster and does not "
                f"use the shared backbone; backbone={self.backbone_name!r} is "
                "not supported (leave the default)"
            )
        if not 0.0 < significance < 1.0:
            raise ValueError("significance must lie in (0, 1)")
        self.significance = significance
        self.horizon_widths: Optional[np.ndarray] = None

    def fit(self, train_data: TrafficData, val_data: TrafficData) -> "CFRNN":
        self._fit_scaler(train_data)
        self.model = _VectorGRUForecaster(
            self.num_nodes,
            self.config.history,
            self.config.horizon,
            hidden_dim=self.config.hidden_dim,
            rng=self._rng,
        )
        self.trainer = Trainer(
            self.model,
            self.config,
            lambda output, target: point_l1_loss(output, target),
            scaler=self.scaler,
        )
        self.trainer.fit(train_data)

        # Conformal calibration: per-horizon quantile of absolute residuals,
        # with the miscoverage budget split evenly across the horizon steps.
        inputs, targets = self._windows(val_data)
        predictions = self._point_forecast(inputs)
        residuals = np.abs(targets - predictions)  # (B, H, N)
        per_step_alpha = self.significance / self.config.horizon
        n = residuals.shape[0] * residuals.shape[2]
        level = min(np.ceil((n + 1) * (1.0 - per_step_alpha)) / n, 1.0)
        self.horizon_widths = np.array(
            [np.quantile(residuals[:, step, :].reshape(-1), level) for step in range(self.config.horizon)]
        )
        self.fitted = True
        return self

    def _point_forecast(self, histories: np.ndarray) -> np.ndarray:
        scaled = self._scale_inputs(histories)
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                chunks = []
                for start in range(0, scaled.shape[0], 256):
                    chunks.append(self.model(Tensor(scaled[start : start + 256])).numpy())
        finally:
            if was_training:
                self.model.train()
        return self.scaler.inverse_transform(np.concatenate(chunks, axis=0))

    # ------------------------------------------------------------------ #
    def _make_model_for_state(self) -> _VectorGRUForecaster:
        return _VectorGRUForecaster(
            self.num_nodes,
            self.config.history,
            self.config.horizon,
            hidden_dim=self.config.hidden_dim,
            rng=self._rng,
        )

    def get_state(self) -> Dict[str, Any]:
        state = super().get_state()
        state["arrays"]["horizon_widths"] = np.asarray(self.horizon_widths)
        return state

    def set_state(self, state: Dict[str, Any]) -> "CFRNN":
        super().set_state(state)
        self.horizon_widths = np.asarray(state["arrays"]["horizon_widths"], dtype=np.float64)
        return self

    def predict(self, histories: np.ndarray) -> PredictionResult:
        self._check_fitted()
        mean = self._point_forecast(histories)
        widths = self.horizon_widths.reshape(1, -1, 1)  # (1, H, 1) broadcast over batch/nodes
        pseudo_std = np.broadcast_to(widths / Z_95, mean.shape).copy()
        # Native per-horizon conformal bounds: symmetric about the point
        # forecast here, but carried as explicit bounds so the streaming
        # conformal layer calibrates them with additive (CQR) margins rather
        # than re-deriving a multiplier on the pseudo std.
        half = np.broadcast_to(widths, mean.shape)
        return PredictionResult(
            mean=mean,
            aleatoric_var=pseudo_std ** 2,
            epistemic_var=np.zeros_like(mean),
            lower=mean - half,
            upper=mean + half,
        )
