"""Locally-weighted conformal inference (Lei et al., 2018).

An MVE model provides the point forecast and a per-point scale estimate
``sigma(x)``; the calibration (validation) split supplies nonconformity
scores ``r_i = |y_i - mu(x_i)| / sigma(x_i)``, whose finite-sample-corrected
``(1 - alpha)`` quantile ``q`` defines the conformalized interval
``mu(x) +- q * sigma(x)``.  The resulting coverage guarantee is
distribution-free, but the interval is reported through the shared Gaussian
interface by converting the half-width back into a pseudo standard deviation.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.core.inference import PredictionResult
from repro.data.datasets import TrafficData
from repro.metrics.uncertainty import Z_95
from repro.uq.mve import MVE


class LocallyWeightedConformal(MVE):
    """MVE conformalized on the validation split."""

    name = "Conformal"
    paradigm = "frequentist"
    uncertainty_type = "aleatoric"

    def __init__(self, *args, significance: float = 0.05, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 < significance < 1.0:
            raise ValueError("significance must lie in (0, 1)")
        self.significance = significance
        self.conformal_quantile: float = 1.0

    def fit(self, train_data: TrafficData, val_data: TrafficData) -> "LocallyWeightedConformal":
        super().fit(train_data, val_data)
        inputs, targets = self._windows(val_data)
        result = super().predict(inputs)
        sigma = np.maximum(result.aleatoric_std, 1e-6)
        scores = np.abs(targets - result.mean) / sigma
        n = scores.size
        # Finite-sample corrected quantile level: ceil((n + 1)(1 - alpha)) / n.
        level = min(np.ceil((n + 1) * (1.0 - self.significance)) / n, 1.0)
        self.conformal_quantile = float(np.quantile(scores.reshape(-1), level))
        return self

    def predict(self, histories: np.ndarray) -> PredictionResult:
        result = super().predict(histories)
        # Interval half-width is q * sigma; store it as a pseudo std so that
        # mean +- 1.96 * std reproduces the conformal interval.
        pseudo_std = self.conformal_quantile * result.aleatoric_std / Z_95
        return result.replace_interval_std(pseudo_std)

    # ------------------------------------------------------------------ #
    def get_state(self) -> Dict[str, Any]:
        state = super().get_state()
        state["meta"]["conformal_quantile"] = self.conformal_quantile
        return state

    def set_state(self, state: Dict[str, Any]) -> "LocallyWeightedConformal":
        super().set_state(state)
        self.conformal_quantile = float(state["meta"]["conformal_quantile"])
        return self
