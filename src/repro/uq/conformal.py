"""Locally-weighted conformal inference (Lei et al., 2018).

An MVE model provides the point forecast and a per-point scale estimate
``sigma(x)``; the calibration (validation) split supplies nonconformity
scores ``r_i = |y_i - mu(x_i)| / sigma(x_i)``, whose finite-sample-corrected
``(1 - alpha)`` quantile ``q`` defines the conformalized interval
``mu(x) +- q * sigma(x)``.  The resulting coverage guarantee is
distribution-free, but the interval is reported through the shared Gaussian
interface by converting the half-width back into a pseudo standard deviation.

Forecast error grows with lead time, so a single quantile over all
step-aheads over-covers short horizons and under-covers long ones;
``per_horizon=True`` computes one quantile per step-ahead instead (the same
shape of state the streaming
:class:`~repro.streaming.aci.AdaptiveConformalCalibrator` adapts online).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.core.inference import PredictionResult
from repro.data.datasets import TrafficData
from repro.metrics.uncertainty import Z_95, conformal_quantile_level
from repro.uq.mve import MVE


class LocallyWeightedConformal(MVE):
    """MVE conformalized on the validation split.

    With ``per_horizon=True`` the calibration computes one quantile per
    step-ahead (``conformal_quantile`` becomes a ``(horizon,)`` array);
    the default single-quantile behaviour is unchanged.
    """

    name = "Conformal"
    paradigm = "frequentist"
    uncertainty_type = "aleatoric"

    def __init__(
        self, *args, significance: float = 0.05, per_horizon: bool = False, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 < significance < 1.0:
            raise ValueError("significance must lie in (0, 1)")
        self.significance = significance
        self.per_horizon = bool(per_horizon)
        self.conformal_quantile: Any = (
            np.ones(self.config.horizon, dtype=np.float64) if self.per_horizon else 1.0
        )

    def fit(self, train_data: TrafficData, val_data: TrafficData) -> "LocallyWeightedConformal":
        super().fit(train_data, val_data)
        inputs, targets = self._windows(val_data)
        result = super().predict(inputs)
        sigma = np.maximum(result.aleatoric_std, 1e-6)
        scores = np.abs(targets - result.mean) / sigma  # (B, H, N)
        if self.per_horizon:
            # One conformal quantile per step-ahead, each over its B*N scores.
            n = scores.shape[0] * scores.shape[2]
            level = conformal_quantile_level(n, self.significance)
            self.conformal_quantile = np.quantile(
                scores.transpose(1, 0, 2).reshape(scores.shape[1], -1), level, axis=1
            )
        else:
            level = conformal_quantile_level(scores.size, self.significance)
            self.conformal_quantile = float(np.quantile(scores.reshape(-1), level))
        return self

    def _quantile_broadcast(self) -> Any:
        """The quantile shaped to broadcast over ``(batch, horizon, nodes)``."""
        if self.per_horizon:
            return np.asarray(self.conformal_quantile).reshape(1, -1, 1)
        return self.conformal_quantile

    def predict(self, histories: np.ndarray) -> PredictionResult:
        result = super().predict(histories)
        # Interval half-width is q * sigma; store it as a pseudo std so that
        # mean +- 1.96 * std reproduces the conformal interval.
        pseudo_std = self._quantile_broadcast() * result.aleatoric_std / Z_95
        return result.replace_interval_std(pseudo_std)

    # ------------------------------------------------------------------ #
    def get_state(self) -> Dict[str, Any]:
        state = super().get_state()
        state["meta"]["per_horizon"] = self.per_horizon
        if self.per_horizon:
            state["meta"]["conformal_quantile"] = None
            state["arrays"]["conformal.quantiles"] = np.asarray(
                self.conformal_quantile, dtype=np.float64
            )
        else:
            state["meta"]["conformal_quantile"] = self.conformal_quantile
        return state

    def set_state(self, state: Dict[str, Any]) -> "LocallyWeightedConformal":
        super().set_state(state)
        saved_per_horizon = bool(state["meta"].get("per_horizon", False))
        if saved_per_horizon != self.per_horizon:
            raise ValueError(
                f"state was saved with per_horizon={saved_per_horizon}, "
                f"cannot restore into per_horizon={self.per_horizon}"
            )
        if self.per_horizon:
            quantiles = np.asarray(
                state["arrays"]["conformal.quantiles"], dtype=np.float64
            )
            if quantiles.shape != (self.config.horizon,):
                raise ValueError(
                    f"saved per-horizon quantiles have shape {quantiles.shape}, "
                    f"expected ({self.config.horizon},)"
                )
            self.conformal_quantile = quantiles.copy()
        else:
            self.conformal_quantile = float(state["meta"]["conformal_quantile"])
        return self
