"""Registry of the uncertainty-quantification methods (paper Table II).

Maps method names to their paradigm / uncertainty-type taxonomy and to a
factory building a ready-to-fit instance, so the benchmark harness and the
Table II generator share a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.trainer import TrainingConfig
from repro.uq.base import UQMethod
from repro.uq.cfrnn import CFRNN
from repro.uq.combined import Combined
from repro.uq.conformal import LocallyWeightedConformal
from repro.uq.deep_ensemble import DeepEnsemble
from repro.uq.deepstuq import DeepSTUQ
from repro.uq.fge import FGE
from repro.uq.mc_dropout import MCDropout
from repro.uq.mve import MVE
from repro.uq.point import PointForecaster
from repro.uq.quantile import QuantileRegression
from repro.uq.temperature import TemperatureScaledMVE


@dataclass(frozen=True)
class MethodInfo:
    """A row of paper Table II."""

    name: str
    paradigm: str
    uncertainty_type: str
    factory: Callable[..., UQMethod]
    in_paper_table: bool = True


METHOD_INFO: Dict[str, MethodInfo] = {
    "Point": MethodInfo("Point", "deterministic", "no", PointForecaster),
    "Quantile": MethodInfo("Quantile", "distribution-free", "aleatoric", QuantileRegression),
    "MVE": MethodInfo("MVE", "frequentist", "aleatoric", MVE),
    "MCDO": MethodInfo("MCDO", "Bayesian", "epistemic", MCDropout),
    "Combined": MethodInfo("Combined", "Bayesian", "aleatoric + epistemic", Combined),
    "TS": MethodInfo("TS", "frequentist", "aleatoric", TemperatureScaledMVE),
    "FGE": MethodInfo("FGE", "ensembling", "epistemic", FGE),
    "Conformal": MethodInfo("Conformal", "frequentist", "aleatoric", LocallyWeightedConformal),
    "CFRNN": MethodInfo("CFRNN", "distribution-free", "aleatoric", CFRNN),
    "DeepSTUQ": MethodInfo("DeepSTUQ", "Bayesian + ensembling", "aleatoric + epistemic", DeepSTUQ),
    # Extensions beyond the paper's table:
    "DeepEnsemble": MethodInfo(
        "DeepEnsemble", "ensembling", "aleatoric + epistemic", DeepEnsemble, in_paper_table=False
    ),
}


def available_methods(paper_only: bool = False) -> List[str]:
    """Names of all registered methods, in Table II / IV column order."""
    names = list(METHOD_INFO)
    if paper_only:
        names = [name for name in names if METHOD_INFO[name].in_paper_table]
    return names


def method_info(name: str) -> MethodInfo:
    """Lookup of a single method's taxonomy entry."""
    if name not in METHOD_INFO:
        raise KeyError(f"unknown UQ method {name!r}; available: {available_methods()}")
    return METHOD_INFO[name]


def create_method(
    name: str,
    num_nodes: int,
    config: Optional[TrainingConfig] = None,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> UQMethod:
    """Instantiate a registered method with a shared training configuration.

    Besides method-specific options (``num_members``, ``significance``, ...),
    ``kwargs`` carries the backbone selection shared by every method:
    ``backbone=`` (a :data:`repro.models.registry.BACKBONE_INFO` name,
    default AGCRN), ``backbone_kwargs=`` and — for the graph-structured
    baselines — ``adjacency=``.
    """
    info = method_info(name)
    return info.factory(num_nodes, config=config, rng=rng, **kwargs)
