"""Evaluation metrics for point prediction and uncertainty quantification.

Point metrics (paper Section V-D1): MAE, RMSE, MAPE.
Uncertainty metrics (Section V-D2): mean negative log-likelihood (MNLL),
prediction-interval coverage probability (PICP) and mean prediction-interval
width (MPIW), plus a few auxiliary scores (Winkler / interval score,
coverage-width criterion) used by the extension benchmarks.
"""

from repro.metrics.point import mae, mape, point_metrics, rmse
from repro.metrics.uncertainty import (
    Z_95,
    conformal_quantile_level,
    coverage_width_criterion,
    interval_bounds,
    mnll,
    mpiw,
    norm_ppf,
    picp,
    uncertainty_metrics,
    winkler_score,
)
from repro.metrics.horizon import per_horizon_metrics, per_horizon_uncertainty

__all__ = [
    "mae",
    "rmse",
    "mape",
    "point_metrics",
    "mnll",
    "picp",
    "mpiw",
    "norm_ppf",
    "Z_95",
    "conformal_quantile_level",
    "interval_bounds",
    "winkler_score",
    "coverage_width_criterion",
    "uncertainty_metrics",
    "per_horizon_metrics",
    "per_horizon_uncertainty",
]
