"""Point-prediction metrics: MAE, RMSE, MAPE (paper Eqs. 20-22)."""

from __future__ import annotations

from typing import Dict

import numpy as np


def _validate(prediction: np.ndarray, target: np.ndarray) -> tuple:
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: prediction {prediction.shape} vs target {target.shape}")
    return prediction, target


def mae(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error (Eq. 21)."""
    prediction, target = _validate(prediction, target)
    return float(np.mean(np.abs(prediction - target)))


def rmse(prediction: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error (Eq. 20)."""
    prediction, target = _validate(prediction, target)
    return float(np.sqrt(np.mean((prediction - target) ** 2)))


def mape(prediction: np.ndarray, target: np.ndarray, epsilon: float = 10.0) -> float:
    """Mean absolute percentage error (Eq. 22), in percent.

    Near-zero targets are masked out (standard practice for traffic flow,
    where sensor dropouts produce zeros that would make MAPE explode).
    ``epsilon`` is the minimum absolute target value included.
    """
    prediction, target = _validate(prediction, target)
    mask = np.abs(target) >= epsilon
    if not mask.any():
        return float("nan")
    return float(np.mean(np.abs((prediction[mask] - target[mask]) / target[mask])) * 100.0)


def point_metrics(prediction: np.ndarray, target: np.ndarray) -> Dict[str, float]:
    """All three point metrics as a dict (keys ``MAE``, ``RMSE``, ``MAPE``)."""
    return {
        "MAE": mae(prediction, target),
        "RMSE": rmse(prediction, target),
        "MAPE": mape(prediction, target),
    }
