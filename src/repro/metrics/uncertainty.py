"""Uncertainty-quantification metrics (paper Eqs. 23-26).

All functions operate on NumPy arrays in the original data scale.  Predictive
distributions are summarized by a mean and a standard deviation; interval
metrics use the Gaussian 95% interval ``mean +- 1.96 sigma`` unless explicit
bounds are supplied.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

#: z-score of the 97.5th percentile of the standard normal (95% interval).
Z_95 = 1.959963984540054


def _validate(*arrays: np.ndarray) -> Tuple[np.ndarray, ...]:
    converted = tuple(np.asarray(a, dtype=np.float64) for a in arrays)
    first = converted[0].shape
    for array in converted[1:]:
        if array.shape != first:
            raise ValueError(f"shape mismatch: {[a.shape for a in converted]}")
    return converted


def interval_bounds(
    mean: np.ndarray, std: np.ndarray, significance: float = 0.05
) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian central prediction interval at level ``1 - significance``.

    For the paper's 95% intervals (``alpha = 5%``) the bounds are
    ``mean +- 1.96 sigma`` (Section V-D2b).
    """
    from scipy import stats

    mean, std = _validate(mean, std)
    if not 0.0 < significance < 1.0:
        raise ValueError("significance must lie in (0, 1)")
    if np.any(std < 0):
        raise ValueError("std must be non-negative")
    z = float(stats.norm.ppf(1.0 - significance / 2.0))
    return mean - z * std, mean + z * std


def mnll(target: np.ndarray, mean: np.ndarray, variance: np.ndarray) -> float:
    """Mean negative Gaussian log-likelihood (Eq. 23)."""
    target, mean, variance = _validate(target, mean, variance)
    variance = np.maximum(variance, 1e-6)
    nll = 0.5 * (np.log(2.0 * np.pi * variance) + (target - mean) ** 2 / variance)
    return float(np.mean(nll))


def picp(target: np.ndarray, lower: np.ndarray, upper: np.ndarray) -> float:
    """Prediction-interval coverage probability, in percent (Eqs. 24-25)."""
    target, lower, upper = _validate(target, lower, upper)
    covered = (target >= lower) & (target <= upper)
    return float(np.mean(covered) * 100.0)


def mpiw(lower: np.ndarray, upper: np.ndarray) -> float:
    """Mean prediction-interval width (Eq. 26)."""
    lower, upper = _validate(lower, upper)
    if np.any(upper < lower):
        raise ValueError("upper bounds must not be smaller than lower bounds")
    return float(np.mean(upper - lower))


def winkler_score(
    target: np.ndarray, lower: np.ndarray, upper: np.ndarray, significance: float = 0.05
) -> float:
    """Winkler / interval score: width plus a penalty for missed coverage.

    Lower is better; proper scoring rule for central intervals.
    """
    target, lower, upper = _validate(target, lower, upper)
    width = upper - lower
    below = (lower - target) * (target < lower)
    above = (target - upper) * (target > upper)
    return float(np.mean(width + (2.0 / significance) * (below + above)))


def coverage_width_criterion(
    target: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    nominal: float = 95.0,
    eta: float = 10.0,
) -> float:
    """Coverage-width criterion: MPIW inflated when PICP misses the nominal level."""
    coverage = picp(target, lower, upper)
    width = mpiw(lower, upper)
    penalty = np.exp(-eta * (coverage - nominal) / 100.0) if coverage < nominal else 0.0
    return float(width * (1.0 + penalty))


def uncertainty_metrics(
    target: np.ndarray,
    mean: np.ndarray,
    std: np.ndarray,
    lower: Optional[np.ndarray] = None,
    upper: Optional[np.ndarray] = None,
    significance: float = 0.05,
) -> Dict[str, float]:
    """MNLL / PICP / MPIW bundle used by the Table IV benchmark.

    If explicit bounds are not given they are derived from the Gaussian
    assumption; distribution-free methods (quantile regression, CFRNN) pass
    their own bounds and report ``MNLL = nan``.
    """
    target, mean, std = _validate(target, mean, std)
    if lower is None or upper is None:
        lower, upper = interval_bounds(mean, std, significance)
        log_likelihood = mnll(target, mean, std ** 2)
    else:
        target, lower, upper = _validate(target, lower, upper)
        log_likelihood = mnll(target, mean, std ** 2) if np.all(std > 0) else float("nan")
    return {
        "MNLL": log_likelihood,
        "PICP": picp(target, lower, upper),
        "MPIW": mpiw(lower, upper),
    }
