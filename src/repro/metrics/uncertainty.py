"""Uncertainty-quantification metrics (paper Eqs. 23-26).

All functions operate on NumPy arrays in the original data scale.  Predictive
distributions are summarized by a mean and a standard deviation; interval
metrics use the Gaussian 95% interval ``mean +- 1.96 sigma`` unless explicit
bounds are supplied.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple, Union

import numpy as np

#: z-score of the 97.5th percentile of the standard normal (95% interval).
Z_95 = 1.959963984540054

# Acklam's rational approximation of the standard-normal quantile function,
# refined below to full double precision; coefficients from Peter Acklam's
# "An algorithm for computing the inverse normal cumulative distribution
# function" (2003).
_PPF_A = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
          1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
_PPF_B = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
          6.680131188771972e+01, -1.328068155288572e+01)
_PPF_C = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
          -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
_PPF_D = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
          3.754408661907416e+00)
_PPF_P_LOW = 0.02425

_erfc = np.frompyfunc(math.erfc, 1, 1)
_SQRT_2 = math.sqrt(2.0)
_SQRT_2PI = math.sqrt(2.0 * math.pi)


def _acklam(p: np.ndarray) -> np.ndarray:
    """Acklam's piecewise-rational initial estimate (|error| < 1.2e-9)."""
    a, b, c, d = _PPF_A, _PPF_B, _PPF_C, _PPF_D
    x = np.empty_like(p)
    # Lower tail, central region and (by symmetry) upper tail.
    low = p < _PPF_P_LOW
    high = p > 1.0 - _PPF_P_LOW
    central = ~(low | high)
    if low.any():
        q = np.sqrt(-2.0 * np.log(p[low]))
        x[low] = (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if high.any():
        q = np.sqrt(-2.0 * np.log(1.0 - p[high]))
        x[high] = -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if central.any():
        q = p[central] - 0.5
        r = q * q
        x[central] = (
            ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        ) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    return x


def norm_ppf(p: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
    """Standard-normal quantile function (inverse CDF), pure NumPy.

    Replaces ``scipy.stats.norm.ppf`` on the serving hot path: Acklam's
    rational approximation followed by two Halley refinement steps against
    the exact CDF (via ``erfc``), which lands within a few ULP of the SciPy
    values (the golden tests pin agreement to 1e-12).
    """
    arr = np.asarray(p, dtype=np.float64)
    if arr.size and (np.any(arr <= 0.0) | np.any(arr >= 1.0)):
        raise ValueError("probabilities must lie strictly inside (0, 1)")
    flat = np.atleast_1d(arr).ravel()
    # Reflect the upper half through ppf(p) = -ppf(1 - p): for p >= 0.5 the
    # subtraction 1 - p is exact (Sterbenz), and CDF(x) - p then never
    # suffers the 1 - tiny cancellation that would stall Halley's method.
    upper = flat > 0.5
    q = np.where(upper, 1.0 - flat, flat)
    x = _acklam(q.copy())
    for _ in range(2):
        # Halley's method on CDF(x) - q; erfc keeps the lower tail accurate.
        cdf = 0.5 * _erfc(-x / _SQRT_2).astype(np.float64)
        err = cdf - q
        u = err * _SQRT_2PI * np.exp(0.5 * x * x)
        x = x - u / (1.0 + 0.5 * x * u)
    x = np.where(upper, -x, x)
    if np.ndim(p) == 0:
        return float(x[0])
    return x.reshape(arr.shape)


def _validate(*arrays: np.ndarray) -> Tuple[np.ndarray, ...]:
    converted = tuple(np.asarray(a, dtype=np.float64) for a in arrays)
    first = converted[0].shape
    for array in converted[1:]:
        if array.shape != first:
            raise ValueError(f"shape mismatch: {[a.shape for a in converted]}")
    return converted


def conformal_quantile_level(n: int, significance: float) -> float:
    """Finite-sample corrected conformal quantile level.

    ``ceil((n + 1)(1 - alpha)) / n``, capped at 1 — the level at which the
    empirical quantile of ``n`` nonconformity scores yields the
    distribution-free ``1 - alpha`` coverage guarantee.  Shared by the batch
    conformal method and the streaming ACI calibrator so the correction can
    never diverge between the two layers.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    return min(np.ceil((n + 1) * (1.0 - significance)) / n, 1.0)


def interval_bounds(
    mean: np.ndarray, std: np.ndarray, significance: float = 0.05
) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian central prediction interval at level ``1 - significance``.

    For the paper's 95% intervals (``alpha = 5%``) the bounds are
    ``mean +- 1.96 sigma`` (Section V-D2b).
    """
    mean, std = _validate(mean, std)
    if not 0.0 < significance < 1.0:
        raise ValueError("significance must lie in (0, 1)")
    if np.any(std < 0):
        raise ValueError("std must be non-negative")
    z = norm_ppf(1.0 - significance / 2.0)
    return mean - z * std, mean + z * std


def mnll(target: np.ndarray, mean: np.ndarray, variance: np.ndarray) -> float:
    """Mean negative Gaussian log-likelihood (Eq. 23)."""
    target, mean, variance = _validate(target, mean, variance)
    variance = np.maximum(variance, 1e-6)
    nll = 0.5 * (np.log(2.0 * np.pi * variance) + (target - mean) ** 2 / variance)
    return float(np.mean(nll))


def picp(target: np.ndarray, lower: np.ndarray, upper: np.ndarray) -> float:
    """Prediction-interval coverage probability, in percent (Eqs. 24-25)."""
    target, lower, upper = _validate(target, lower, upper)
    covered = (target >= lower) & (target <= upper)
    return float(np.mean(covered) * 100.0)


def mpiw(lower: np.ndarray, upper: np.ndarray) -> float:
    """Mean prediction-interval width (Eq. 26)."""
    lower, upper = _validate(lower, upper)
    if np.any(upper < lower):
        raise ValueError("upper bounds must not be smaller than lower bounds")
    return float(np.mean(upper - lower))


def winkler_score(
    target: np.ndarray, lower: np.ndarray, upper: np.ndarray, significance: float = 0.05
) -> float:
    """Winkler / interval score: width plus a penalty for missed coverage.

    Lower is better; proper scoring rule for central intervals.
    """
    target, lower, upper = _validate(target, lower, upper)
    width = upper - lower
    below = (lower - target) * (target < lower)
    above = (target - upper) * (target > upper)
    return float(np.mean(width + (2.0 / significance) * (below + above)))


def coverage_width_criterion(
    target: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    nominal: float = 95.0,
    eta: float = 10.0,
) -> float:
    """Coverage-width criterion: MPIW inflated when PICP misses the nominal level."""
    coverage = picp(target, lower, upper)
    width = mpiw(lower, upper)
    penalty = np.exp(-eta * (coverage - nominal) / 100.0) if coverage < nominal else 0.0
    return float(width * (1.0 + penalty))


def uncertainty_metrics(
    target: np.ndarray,
    mean: np.ndarray,
    std: np.ndarray,
    lower: Optional[np.ndarray] = None,
    upper: Optional[np.ndarray] = None,
    significance: float = 0.05,
) -> Dict[str, float]:
    """MNLL / PICP / MPIW bundle used by the Table IV benchmark.

    If explicit bounds are not given they are derived from the Gaussian
    assumption; distribution-free methods (quantile regression, CFRNN) pass
    their own bounds and report ``MNLL = nan``.
    """
    target, mean, std = _validate(target, mean, std)
    if lower is None or upper is None:
        lower, upper = interval_bounds(mean, std, significance)
        log_likelihood = mnll(target, mean, std ** 2)
    else:
        target, lower, upper = _validate(target, lower, upper)
        log_likelihood = mnll(target, mean, std ** 2) if np.all(std > 0) else float("nan")
    return {
        "MNLL": log_likelihood,
        "PICP": picp(target, lower, upper),
        "MPIW": mpiw(lower, upper),
    }
