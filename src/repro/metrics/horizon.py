"""Per-horizon metric curves (paper Figs. 7 and 10).

Predictions and targets are arrays of shape ``(num_samples, horizon,
num_nodes)``; the functions below slice along the horizon axis and report
one metric value per forecast step (5, 10, ..., 60 minutes ahead).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.metrics.point import mae, mape, rmse


def _validate_horizon(array: np.ndarray) -> np.ndarray:
    array = np.asarray(array, dtype=np.float64)
    if array.ndim != 3:
        raise ValueError(f"expected (samples, horizon, nodes), got shape {array.shape}")
    return array


def per_horizon_metrics(
    prediction: np.ndarray, target: np.ndarray, interval_minutes: int = 5
) -> Dict[str, List[float]]:
    """MAE / RMSE / MAPE per forecast step (Fig. 7).

    Returns a dict with keys ``horizon_minutes``, ``MAE``, ``RMSE``, ``MAPE``,
    each a list with one value per horizon step.
    """
    prediction = _validate_horizon(prediction)
    target = _validate_horizon(target)
    if prediction.shape != target.shape:
        raise ValueError("prediction and target must have the same shape")
    horizon = prediction.shape[1]
    result: Dict[str, List[float]] = {
        "horizon_minutes": [(step + 1) * interval_minutes for step in range(horizon)],
        "MAE": [],
        "RMSE": [],
        "MAPE": [],
    }
    for step in range(horizon):
        result["MAE"].append(mae(prediction[:, step], target[:, step]))
        result["RMSE"].append(rmse(prediction[:, step], target[:, step]))
        result["MAPE"].append(mape(prediction[:, step], target[:, step]))
    return result


def per_horizon_uncertainty(
    aleatoric_std: np.ndarray,
    epistemic_std: Optional[np.ndarray] = None,
    interval_minutes: int = 5,
) -> Dict[str, List[float]]:
    """Mean aleatoric / epistemic uncertainty per forecast step (Fig. 10)."""
    aleatoric_std = _validate_horizon(aleatoric_std)
    horizon = aleatoric_std.shape[1]
    result: Dict[str, List[float]] = {
        "horizon_minutes": [(step + 1) * interval_minutes for step in range(horizon)],
        "aleatoric": [float(np.mean(aleatoric_std[:, step])) for step in range(horizon)],
    }
    if epistemic_std is not None:
        epistemic_std = _validate_horizon(epistemic_std)
        if epistemic_std.shape != aleatoric_std.shape:
            raise ValueError("aleatoric and epistemic arrays must have the same shape")
        result["epistemic"] = [float(np.mean(epistemic_std[:, step])) for step in range(horizon)]
    return result
