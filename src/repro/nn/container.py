"""Module containers: :class:`Sequential` and :class:`ModuleList`."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.nn.module import Module


class Sequential(Module):
    """Chain modules, feeding each output into the next module's input."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for index, module in enumerate(modules):
            self.add_module(str(index), module)
            self._ordered.append(module)

    def append(self, module: Module) -> "Sequential":
        self.add_module(str(len(self._ordered)), module)
        self._ordered.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def forward(self, x):
        for module in self._ordered:
            x = module(x)
        return x


class ModuleList(Module):
    """A list of sub-modules whose parameters are properly registered.

    Unlike :class:`Sequential`, a ``ModuleList`` has no forward semantics of
    its own; it simply holds modules for explicit indexing in the owner's
    ``forward``.
    """

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._ordered)), module)
        self._ordered.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def forward(self, *args, **kwargs):
        raise NotImplementedError("ModuleList has no forward; index into it explicitly")
