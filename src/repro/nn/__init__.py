"""Neural-network layers built on the :mod:`repro.tensor` autodiff substrate.

The layer zoo covers everything the DeepSTUQ paper and its baselines need:
linear projections, (MC-capable) dropout, gated recurrent units, graph
convolutions (vanilla GCN, Chebyshev, diffusion, and the adaptive AVWGCN /
NAPL variant from AGCRN), causal temporal convolutions, attention blocks,
and normalization layers.
"""

from repro.nn.module import Module, Parameter
from repro.nn.container import ModuleList, Sequential
from repro.nn.linear import Linear
from repro.nn.dropout import (
    Dropout,
    reseed_dropout,
    sample_fold,
    set_mc_dropout,
    set_sample_fold,
)
from repro.nn.conv import CausalConv1d, GatedTemporalConv
from repro.nn.rnn import GRU, GRUCell
from repro.nn.graph import (
    AdaptiveAdjacency,
    AVWGCN,
    ChebConv,
    DiffusionConv,
    GCNLayer,
)
from repro.nn.attention import SpatialAttention, TemporalAttention
from repro.nn.normalization import BatchNorm1d, LayerNorm
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "ModuleList",
    "Sequential",
    "Linear",
    "Dropout",
    "set_mc_dropout",
    "set_sample_fold",
    "sample_fold",
    "reseed_dropout",
    "CausalConv1d",
    "GatedTemporalConv",
    "GRU",
    "GRUCell",
    "AdaptiveAdjacency",
    "AVWGCN",
    "ChebConv",
    "DiffusionConv",
    "GCNLayer",
    "SpatialAttention",
    "TemporalAttention",
    "BatchNorm1d",
    "LayerNorm",
    "init",
]
