"""Dropout with optional Monte-Carlo (test-time) behaviour.

The DeepSTUQ paper uses *MC dropout* (Gal & Ghahramani, 2016): the same
Bernoulli masking applied during training is kept active at inference so that
repeated stochastic forward passes approximate samples from the weight
posterior.  :class:`Dropout` therefore has two switches:

* ``module.training`` — the usual train/eval flag (standard dropout), and
* ``mc_active`` — when ``True`` the layer stays stochastic in eval mode.

Models expose :func:`set_mc_dropout` to flip ``mc_active`` on every dropout
layer in a module tree before/after Monte-Carlo sampling.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor
from repro.tensor.functional import dropout_mask


class Dropout(Module):
    """Inverted dropout: zero activations with probability ``rate`` and rescale.

    Parameters
    ----------
    rate:
        Probability of dropping an activation; must lie in ``[0, 1)``.
    rng:
        Generator used for mask sampling, so stochastic passes are seedable.
    """

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.mc_active = False
        self._rng = rng if rng is not None else np.random.default_rng()

    def reseed(self, rng: np.random.Generator) -> None:
        """Replace the mask generator (used to make MC sampling reproducible)."""
        self._rng = rng

    @property
    def stochastic(self) -> bool:
        """Whether the layer will apply a random mask on the next call."""
        return self.rate > 0.0 and (self.training or self.mc_active)

    def forward(self, x: Tensor) -> Tensor:
        if not self.stochastic:
            return x
        mask = dropout_mask(x.shape, self.rate, self._rng)
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate}, mc_active={self.mc_active})"


def set_mc_dropout(module: Module, enabled: bool) -> int:
    """Enable/disable Monte-Carlo behaviour on every dropout layer of ``module``.

    Returns the number of dropout layers affected, which callers can use to
    assert that a model actually contains stochastic layers before attempting
    MC sampling.
    """
    count = 0
    for child in module.modules():
        if isinstance(child, Dropout):
            child.mc_active = enabled
            count += 1
    return count
