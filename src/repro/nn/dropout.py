"""Dropout with optional Monte-Carlo (test-time) behaviour.

The DeepSTUQ paper uses *MC dropout* (Gal & Ghahramani, 2016): the same
Bernoulli masking applied during training is kept active at inference so that
repeated stochastic forward passes approximate samples from the weight
posterior.  :class:`Dropout` therefore has two switches:

* ``module.training`` — the usual train/eval flag (standard dropout), and
* ``mc_active`` — when ``True`` the layer stays stochastic in eval mode.

Models expose :func:`set_mc_dropout` to flip ``mc_active`` on every dropout
layer in a module tree before/after Monte-Carlo sampling.
"""

from __future__ import annotations

import contextlib
from typing import Optional, Sequence

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor
from repro.tensor.functional import dropout_mask


class Dropout(Module):
    """Inverted dropout: zero activations with probability ``rate`` and rescale.

    Parameters
    ----------
    rate:
        Probability of dropping an activation; must lie in ``[0, 1)``.
    rng:
        Generator used for mask sampling, so stochastic passes are seedable.
    """

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.mc_active = False
        self._rng = rng if rng is not None else np.random.default_rng()
        self._fold_streams: Optional[Sequence[np.random.Generator]] = None

    def reseed(self, rng: np.random.Generator) -> None:
        """Replace the mask generator (used to make MC sampling reproducible)."""
        self._rng = rng

    def set_fold(self, streams: Optional[Sequence[np.random.Generator]]) -> None:
        """Enter (or leave, with ``None``) sample-folded mask mode.

        In folded mode the leading axis of the input is interpreted as
        ``num_samples`` stacked copies of a sub-batch (``n_mc * batch``
        rows).  One mask per sample is drawn from that sample's dedicated
        ``streams[s]`` generator, so the random stream consumed for sample
        ``s`` is identical to what a sequential per-sample pass (reseeded
        with the same generator) would consume — this is what makes the
        vectorized Monte-Carlo path bit-equal to the looped one.
        """
        self._fold_streams = list(streams) if streams is not None else None

    @property
    def stochastic(self) -> bool:
        """Whether the layer will apply a random mask on the next call."""
        return self.rate > 0.0 and (self.training or self.mc_active)

    def forward(self, x: Tensor) -> Tensor:
        if not self.stochastic:
            return x
        if self._fold_streams is not None:
            num_samples = len(self._fold_streams)
            if x.shape[0] % num_samples != 0:
                raise ValueError(
                    f"folded input of {x.shape[0]} rows is not divisible by "
                    f"{num_samples} samples"
                )
            sub_batch = x.shape[0] // num_samples
            sub_shape = (sub_batch,) + tuple(x.shape[1:])
            mask = np.concatenate(
                [dropout_mask(sub_shape, self.rate, stream) for stream in self._fold_streams],
                axis=0,
            )
        else:
            mask = dropout_mask(x.shape, self.rate, self._rng)
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate}, mc_active={self.mc_active})"


def set_sample_fold(
    module: Module, streams: Optional[Sequence[np.random.Generator]]
) -> int:
    """Enter/leave sample-folded mask mode on every dropout layer of ``module``.

    Returns the number of dropout layers affected.
    """
    count = 0
    for child in module.modules():
        if isinstance(child, Dropout):
            child.set_fold(streams)
            count += 1
    return count


def reseed_dropout(module: Module, rng: np.random.Generator) -> int:
    """Point every dropout layer of ``module`` at the shared generator ``rng``."""
    count = 0
    for child in module.modules():
        if isinstance(child, Dropout):
            child.reseed(rng)
            count += 1
    return count


@contextlib.contextmanager
def sample_fold(module: Module, streams: Sequence[np.random.Generator]):
    """Context manager wrapping :func:`set_sample_fold` with guaranteed cleanup."""
    set_sample_fold(module, streams)
    try:
        yield module
    finally:
        set_sample_fold(module, None)


def set_mc_dropout(module: Module, enabled: bool) -> int:
    """Enable/disable Monte-Carlo behaviour on every dropout layer of ``module``.

    Returns the number of dropout layers affected, which callers can use to
    assert that a model actually contains stochastic layers before attempting
    MC sampling.
    """
    count = 0
    for child in module.modules():
        if isinstance(child, Dropout):
            child.mc_active = enabled
            count += 1
    return count
