"""Weight initialization schemes.

All initializers take an ``rng`` (``numpy.random.Generator``) so that model
construction is fully reproducible; layers create their own default generator
when none is supplied.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (used for biases)."""
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)


def constant(shape: Tuple[int, ...], value: float) -> np.ndarray:
    return np.full(shape, float(value))


def uniform(
    shape: Tuple[int, ...], low: float = -0.1, high: float = 0.1, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    return _rng(rng).uniform(low, high, size=shape)


def normal(
    shape: Tuple[int, ...], mean: float = 0.0, std: float = 0.01, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    return _rng(rng).normal(mean, std, size=shape)


def _fan_in_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for a weight tensor.

    For 2-D weights the convention is ``(fan_in, fan_out) = shape``; for
    higher-rank weights the trailing two dimensions are treated as the
    linear map and the leading dimensions as receptive field.
    """
    if len(shape) < 2:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[:-2])) if len(shape) > 2 else 1
    fan_in = shape[-2] * receptive
    fan_out = shape[-1] * receptive
    return fan_in, fan_out


def xavier_uniform(
    shape: Tuple[int, ...], gain: float = 1.0, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return _rng(rng).uniform(-bound, bound, size=shape)


def xavier_normal(
    shape: Tuple[int, ...], gain: float = 1.0, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return _rng(rng).normal(0.0, std, size=shape)


def kaiming_uniform(
    shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """He/Kaiming uniform initialization for ReLU-family activations."""
    fan_in, _ = _fan_in_fan_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return _rng(rng).uniform(-bound, bound, size=shape)


def kaiming_normal(
    shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """He/Kaiming normal initialization for ReLU-family activations."""
    fan_in, _ = _fan_in_fan_out(shape)
    return _rng(rng).normal(0.0, np.sqrt(2.0 / fan_in), size=shape)
