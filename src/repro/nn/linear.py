"""Fully-connected (affine) layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class Linear(Module):
    """Affine transformation ``y = x @ W + b`` applied to the last axis.

    Parameters
    ----------
    in_features, out_features:
        Sizes of the input / output feature dimension.
    bias:
        Whether to add a learnable bias.
    rng:
        Random generator used for weight initialization (Xavier uniform).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng=rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected last dim {self.in_features}, got input shape {x.shape}"
            )
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, out_features={self.out_features}, "
            f"bias={self.bias is not None})"
        )
