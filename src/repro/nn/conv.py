"""Temporal convolution layers.

Traffic baselines such as ST-GCN and GraphWaveNet model temporal dependency
with (gated, dilated) 1-D convolutions along the time axis.  The layers here
operate on node signals of shape ``(batch, time, num_nodes, channels)`` and
convolve along ``time`` only, which is exactly the "1x k" convolution those
architectures use.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.tensor import functional as F


class CausalConv1d(Module):
    """Causal (left-padded), optionally dilated convolution along the time axis.

    Parameters
    ----------
    in_channels, out_channels:
        Channel dimensions of the node signal.
    kernel_size:
        Temporal receptive field of the filter.
    dilation:
        Spacing between filter taps.
    causal:
        When ``True`` the input is left-padded so the output has the same
        length as the input and only looks at past steps.  When ``False`` the
        output is shortened by ``(kernel_size - 1) * dilation`` steps (valid
        convolution), matching ST-GCN's temporal blocks.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int = 1,
        causal: bool = True,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if kernel_size < 1 or dilation < 1:
            raise ValueError("kernel_size and dilation must be >= 1")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.causal = causal
        self.weight = Parameter(
            init.xavier_uniform((kernel_size, in_channels, out_channels), rng=rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    @property
    def receptive_field(self) -> int:
        return (self.kernel_size - 1) * self.dilation + 1

    def forward(self, x: Tensor) -> Tensor:
        """Convolve ``x`` of shape (batch, time, num_nodes, in_channels)."""
        if x.ndim != 4:
            raise ValueError(f"CausalConv1d expects 4-D input, got shape {x.shape}")
        batch, num_steps, num_nodes, _ = x.shape
        pad = (self.kernel_size - 1) * self.dilation
        if self.causal and pad > 0:
            padding = Tensor(np.zeros((batch, pad, num_nodes, self.in_channels)))
            x = F.cat([padding, x], axis=1)
        out_steps = x.shape[1] - pad
        if out_steps <= 0:
            raise ValueError(
                f"input has {num_steps} steps but the receptive field is {self.receptive_field}"
            )
        taps = []
        for k in range(self.kernel_size):
            start = k * self.dilation
            window = x[:, start : start + out_steps, :, :]
            taps.append(window.matmul(self.weight[k]))
        out = taps[0]
        for tap in taps[1:]:
            out = out + tap
        if self.bias is not None:
            out = out + self.bias
        return out


class GatedTemporalConv(Module):
    """Gated linear unit over time: ``tanh(conv_f(x)) * sigmoid(conv_g(x))``.

    This is the temporal block used by ST-GCN / GraphWaveNet / STFGNN's gated
    dilated CNN module.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int = 1,
        causal: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.filter_conv = CausalConv1d(
            in_channels, out_channels, kernel_size, dilation=dilation, causal=causal, rng=rng
        )
        self.gate_conv = CausalConv1d(
            in_channels, out_channels, kernel_size, dilation=dilation, causal=causal, rng=rng
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.filter_conv(x).tanh() * self.gate_conv(x).sigmoid()
