"""Recurrent layers: :class:`GRUCell` and multi-step :class:`GRU`.

The plain GRU is used by the CFRNN conformal baseline and as the temporal
backbone of several baselines; DeepSTUQ's own recurrence replaces the linear
maps by adaptive graph convolutions (see ``repro.models.agcrn``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn import init
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.tensor import Tensor
from repro.tensor import functional as F


class GRUCell(Module):
    """Single-step gated recurrent unit.

    Gates follow the standard formulation (Cho et al., 2014):

    ``z = sigmoid(W_z [x, h])``, ``r = sigmoid(W_r [x, h])``,
    ``c = tanh(W_c [x, r * h])``, ``h' = z * h + (1 - z) * c``.

    The update convention matches the paper's Eq. 6 (new state is a convex
    combination weighted by ``z``).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.gate_z = Linear(input_size + hidden_size, hidden_size, rng=rng)
        self.gate_r = Linear(input_size + hidden_size, hidden_size, rng=rng)
        self.candidate = Linear(input_size + hidden_size, hidden_size, rng=rng)

    def init_hidden(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        """Advance one step: ``x`` is (batch, input_size), ``hidden`` is (batch, hidden_size)."""
        combined = F.cat([x, hidden], axis=-1)
        update = self.gate_z(combined).sigmoid()
        reset = self.gate_r(combined).sigmoid()
        candidate = self.candidate(F.cat([x, reset * hidden], axis=-1)).tanh()
        return update * hidden + (1.0 - update) * candidate


class GRU(Module):
    """Multi-step GRU over sequences of shape ``(batch, time, input_size)``.

    Returns the full output sequence ``(batch, time, hidden_size)`` and the
    final hidden state ``(batch, hidden_size)``.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.cell = GRUCell(input_size, hidden_size, rng=rng)

    def forward(self, x: Tensor, hidden: Optional[Tensor] = None) -> Tuple[Tensor, Tensor]:
        if x.ndim != 3:
            raise ValueError(f"GRU expects (batch, time, features), got shape {x.shape}")
        batch_size, num_steps, _ = x.shape
        state = hidden if hidden is not None else self.cell.init_hidden(batch_size)
        outputs: List[Tensor] = []
        for step in range(num_steps):
            state = self.cell(x[:, step, :], state)
            outputs.append(state)
        return F.stack(outputs, axis=1), state
