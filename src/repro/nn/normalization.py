"""Normalization layers: batch normalization and layer normalization.

Batch normalization is required by the AWA re-training procedure (paper
Algorithm 1 performs a batch-norm statistics update after each weight
averaging step) and by several convolutional baselines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class BatchNorm1d(Module):
    """Normalize the last (feature) axis over all leading axes.

    Running estimates of mean and variance are maintained with exponential
    smoothing for use in evaluation mode; :meth:`reset_running_stats` clears
    them, which is what the AWA re-training loop calls before re-estimating
    statistics for the averaged weights.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self.num_batches_tracked = 0

    def reset_running_stats(self) -> None:
        self.running_mean = np.zeros(self.num_features)
        self.running_var = np.ones(self.num_features)
        self.num_batches_tracked = 0

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expected {self.num_features} features, got shape {x.shape}"
            )
        if self.training:
            axes = tuple(range(x.ndim - 1))
            batch_mean = x.data.mean(axis=axes)
            batch_var = x.data.var(axis=axes)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * batch_var
            self.num_batches_tracked += 1
            mean, var = batch_mean, batch_var
        else:
            mean, var = self.running_mean, self.running_var
        normalized = (x - Tensor(mean)) / Tensor(np.sqrt(var + self.eps))
        return normalized * self.gamma + self.beta


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.num_features:
            raise ValueError(
                f"LayerNorm expected {self.num_features} features, got shape {x.shape}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normalized = (x - mean) / (var + self.eps).sqrt()
        return normalized * self.gamma + self.beta
