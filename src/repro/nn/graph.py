"""Graph convolution layers.

Four flavours are provided, matching the models evaluated in the paper:

* :class:`GCNLayer` — the vanilla first-order GCN propagation rule
  ``S((I + D^-1/2 A D^-1/2) Z W + b)`` (paper Eq. 3).
* :class:`ChebConv` — Chebyshev polynomial filtering used by ST-GCN.
* :class:`DiffusionConv` — forward/backward random-walk diffusion used by
  DCRNN and GraphWaveNet.
* :class:`AVWGCN` + :class:`AdaptiveAdjacency` — the adaptive graph
  convolution with Node Adaptive Parameter Learning from AGCRN
  (paper Eqs. 4–5), which is the spatial block of DeepSTUQ itself.

Support matrices are dense NumPy arrays; road networks in the evaluation
have at most a few hundred nodes, so dense propagation is simple and fast
enough for the NumPy substrate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.tensor import functional as F


def _as_support(support) -> Tensor:
    """Wrap a (N, N) support matrix as a constant Tensor."""
    if isinstance(support, Tensor):
        return support.detach()
    return Tensor(np.asarray(support, dtype=np.float64))


class GCNLayer(Module):
    """First-order graph convolution with a fixed, pre-normalized support.

    Parameters
    ----------
    in_features, out_features:
        Feature dimensions of the node signal.
    support:
        Pre-normalized propagation matrix ``I + D^-1/2 A D^-1/2`` of shape
        ``(num_nodes, num_nodes)``; see :mod:`repro.graph.adjacency`.
    activation:
        ``"sigmoid"``, ``"relu"``, ``"tanh"`` or ``None`` for linear output.
    """

    _ACTIVATIONS = {
        "sigmoid": lambda t: t.sigmoid(),
        "relu": lambda t: t.relu(),
        "tanh": lambda t: t.tanh(),
        None: lambda t: t,
    }

    def __init__(
        self,
        in_features: int,
        out_features: int,
        support,
        activation: Optional[str] = "relu",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if activation not in self._ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        self.in_features = in_features
        self.out_features = out_features
        self.support = _as_support(support)
        self.activation = activation
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng=rng))
        self.bias = Parameter(init.zeros((out_features,)))

    def forward(self, x: Tensor) -> Tensor:
        """Propagate a node signal of shape ``(batch, num_nodes, in_features)``."""
        aggregated = self.support.matmul(x) if x.ndim == 2 else _batch_propagate(self.support, x)
        out = aggregated.matmul(self.weight) + self.bias
        return self._ACTIVATIONS[self.activation](out)


def _batch_propagate(support: Tensor, x: Tensor) -> Tensor:
    """Apply ``support @ x`` where ``x`` has shape (batch, N, C)."""
    # (B, N, C) -> (B, N, C): matmul broadcasting of (N, N) over the batch axis.
    return support.matmul(x)


class ChebConv(Module):
    """Chebyshev spectral graph convolution of order ``K``.

    Filters the node signal with ``sum_k T_k(L_tilde) X W_k`` where the
    Chebyshev polynomials of the scaled Laplacian are precomputed as dense
    supports (see :func:`repro.graph.adjacency.chebyshev_polynomials`).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        supports: Sequence[np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not supports:
            raise ValueError("ChebConv requires at least one support matrix")
        self.in_features = in_features
        self.out_features = out_features
        self.supports = [_as_support(s) for s in supports]
        self.order = len(self.supports)
        self.weight = Parameter(
            init.xavier_uniform((self.order * in_features, out_features), rng=rng)
        )
        self.bias = Parameter(init.zeros((out_features,)))

    def forward(self, x: Tensor) -> Tensor:
        """Input/output shape ``(batch, num_nodes, features)``."""
        propagated = [support.matmul(x) for support in self.supports]
        stacked = F.cat(propagated, axis=-1)
        return stacked.matmul(self.weight) + self.bias


class DiffusionConv(Module):
    """Bidirectional random-walk diffusion convolution (DCRNN).

    ``supports`` should contain the forward and backward transition matrices
    ``D_O^-1 A`` and ``D_I^-1 A^T``; each is expanded to ``max_step`` powers.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        supports: Sequence[np.ndarray],
        max_step: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if max_step < 1:
            raise ValueError("max_step must be >= 1")
        self.in_features = in_features
        self.out_features = out_features
        self.max_step = max_step
        expanded: List[Tensor] = [Tensor(np.eye(np.asarray(supports[0]).shape[0]))]
        for support in supports:
            base = np.asarray(support, dtype=np.float64)
            power = np.eye(base.shape[0])
            for _ in range(max_step):
                power = power @ base
                expanded.append(Tensor(power.copy()))
        self.supports = expanded
        self.num_matrices = len(expanded)
        self.weight = Parameter(
            init.xavier_uniform((self.num_matrices * in_features, out_features), rng=rng)
        )
        self.bias = Parameter(init.zeros((out_features,)))

    def forward(self, x: Tensor) -> Tensor:
        """Input/output shape ``(batch, num_nodes, features)``."""
        propagated = [support.matmul(x) for support in self.supports]
        stacked = F.cat(propagated, axis=-1)
        return stacked.matmul(self.weight) + self.bias


class AdaptiveAdjacency(Module):
    """Learned normalized adjacency ``softmax(ReLU(E E^T))`` (paper Eq. 4).

    The node-embedding matrix ``E`` is the only parameter; it is shared with
    the :class:`AVWGCN` layers that use Node Adaptive Parameter Learning.
    """

    def __init__(
        self,
        num_nodes: int,
        embed_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if embed_dim <= 0 or num_nodes <= 0:
            raise ValueError("num_nodes and embed_dim must be positive")
        self.num_nodes = num_nodes
        self.embed_dim = embed_dim
        self.embeddings = Parameter(init.normal((num_nodes, embed_dim), std=0.1, rng=rng))

    def forward(self) -> Tensor:
        """Return the learned (num_nodes, num_nodes) propagation matrix."""
        scores = self.embeddings.matmul(self.embeddings.transpose()).relu()
        return F.softmax(scores, axis=-1)


class AVWGCN(Module):
    """Adaptive graph convolution with Node Adaptive Parameter Learning.

    Implements paper Eq. 5: ``Z' = S((I + A_hat) Z E W_g + E b_g)`` where the
    per-node weights are generated from the shared node embeddings ``E`` via
    a weight pool, and the propagation matrix ``A_hat`` is produced by
    :class:`AdaptiveAdjacency`.  An optional dropout mask (Eq. 13) is applied
    by the caller.

    Input/output shape: ``(batch, num_nodes, features)``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        embed_dim: int,
        cheb_k: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if cheb_k < 1:
            raise ValueError("cheb_k must be >= 1")
        self.in_features = in_features
        self.out_features = out_features
        self.embed_dim = embed_dim
        self.cheb_k = cheb_k
        self.weight_pool = Parameter(
            init.xavier_uniform((embed_dim, cheb_k * in_features * out_features), rng=rng)
        )
        self.bias_pool = Parameter(init.zeros((embed_dim, out_features)))

    def forward(self, x: Tensor, adjacency: Tensor, embeddings: Tensor) -> Tensor:
        """Propagate ``x`` (batch, N, C_in) with the learned adjacency.

        Parameters
        ----------
        x:
            Node signal of shape ``(batch, num_nodes, in_features)``.
        adjacency:
            Learned propagation matrix from :class:`AdaptiveAdjacency`.
        embeddings:
            Node-embedding parameter shared across layers, shape
            ``(num_nodes, embed_dim)``.
        """
        num_nodes = x.shape[1]
        # Chebyshev-style support set: T_0 = I, T_1 = A_hat, T_k = 2 A T_{k-1} - T_{k-2}.
        supports = [Tensor(np.eye(num_nodes)), adjacency]
        for _ in range(2, self.cheb_k):
            supports.append(2.0 * adjacency.matmul(supports[-1]) - supports[-2])
        supports = supports[: self.cheb_k]

        # (B, N, K * C_in): concatenate the propagated signals over supports.
        propagated = F.cat([support.matmul(x) for support in supports], axis=-1)

        # Node-adaptive weights: (N, K*C_in, C_out) generated from embeddings.
        weights = embeddings.matmul(self.weight_pool).reshape(
            num_nodes, self.cheb_k * self.in_features, self.out_features
        )
        bias = embeddings.matmul(self.bias_pool)  # (N, C_out)

        # Batched per-node contraction: (B, N, 1, K*C_in) @ (N, K*C_in, C_out).
        out = propagated.unsqueeze(2).matmul(weights).squeeze(2)
        return out + bias
