"""Spatial and temporal attention blocks (ASTGCN-style).

ASTGCN augments graph/temporal convolutions with attention matrices that
re-weight the adjacency (spatial attention) and the time axis (temporal
attention).  The formulations below follow Guo et al. (AAAI 2019) with the
bilinear score parameterization.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.tensor import functional as F


class SpatialAttention(Module):
    """Produce an ``(N, N)`` attention matrix from a spatio-temporal signal.

    Input shape: ``(batch, time, num_nodes, channels)``.
    Output shape: ``(batch, num_nodes, num_nodes)`` row-normalized scores.
    """

    def __init__(
        self,
        num_steps: int,
        channels: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.w_time = Parameter(init.xavier_uniform((num_steps, 1), rng=rng))
        self.w_channel = Parameter(init.xavier_uniform((channels, 1), rng=rng))
        self.bias = Parameter(init.zeros((1,)))

    def forward(self, x: Tensor) -> Tensor:
        # Collapse time: (B, T, N, C) -> (B, N, C) via learned time weights.
        collapsed_time = (x.transpose(0, 2, 3, 1).matmul(self.w_time)).squeeze(-1)  # (B, N, C)
        # Collapse channels: (B, N, C) -> (B, N) via learned channel weights.
        left = collapsed_time  # (B, N, C)
        right = collapsed_time.matmul(self.w_channel)  # (B, N, 1)
        scores = left.matmul(left.transpose(0, 2, 1)) + right + self.bias  # (B, N, N)
        return F.softmax(scores.sigmoid(), axis=-1)


class TemporalAttention(Module):
    """Produce a ``(T, T)`` attention matrix over the time axis.

    Input shape: ``(batch, time, num_nodes, channels)``.
    Output shape: ``(batch, time, time)`` row-normalized scores.
    """

    def __init__(
        self,
        num_nodes: int,
        channels: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.w_node = Parameter(init.xavier_uniform((num_nodes, 1), rng=rng))
        self.w_channel = Parameter(init.xavier_uniform((channels, 1), rng=rng))
        self.bias = Parameter(init.zeros((1,)))

    def forward(self, x: Tensor) -> Tensor:
        # Collapse nodes: (B, T, N, C) -> (B, T, C).
        collapsed_nodes = (x.transpose(0, 1, 3, 2).matmul(self.w_node)).squeeze(-1)
        left = collapsed_nodes  # (B, T, C)
        right = collapsed_nodes.matmul(self.w_channel)  # (B, T, 1)
        scores = left.matmul(left.transpose(0, 2, 1)) + right + self.bias  # (B, T, T)
        return F.softmax(scores.sigmoid(), axis=-1)
