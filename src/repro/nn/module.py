"""Base classes for trainable modules: :class:`Parameter` and :class:`Module`.

The design mirrors ``torch.nn.Module``: parameters and sub-modules are
registered automatically on attribute assignment, ``parameters()`` walks the
tree, ``state_dict()`` / ``load_state_dict()`` serialize weights as plain
NumPy arrays, and ``train()`` / ``eval()`` toggle the training flag used by
dropout and batch normalization.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is a trainable parameter of a :class:`Module`."""

    __slots__ = ()

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Sub-classes define parameters and sub-modules as attributes in
    ``__init__`` and implement :meth:`forward`.  Calling the module invokes
    ``forward``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # Attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        """Explicitly register a parameter under ``name``."""
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    def add_module(self, name: str, module: "Module") -> None:
        """Explicitly register a sub-module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError("Module subclasses must implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------ #
    # Parameter iteration
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its descendants."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs over the module tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total number of scalar weights in the module tree."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # Training state
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set the module (recursively) to training mode."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set the module (recursively) to evaluation mode."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear the gradient buffers of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def apply(self, fn) -> "Module":
        """Apply ``fn`` to every module in the tree (post-order)."""
        for child in self._modules.values():
            child.apply(fn)
        fn(self)
        return self

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by its qualified name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values from a :meth:`state_dict`-style mapping."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {param.data.shape}, got {value.shape}"
                )
            param.data[...] = value

    def copy_weights_from(self, other: "Module") -> None:
        """Copy parameter values from another module with identical structure."""
        self.load_state_dict(other.state_dict())

    def __repr__(self) -> str:
        child_lines = [f"  ({name}): {module.__class__.__name__}" for name, module in self._modules.items()]
        body = "\n".join(child_lines)
        if body:
            return f"{self.__class__.__name__}(\n{body}\n)"
        return f"{self.__class__.__name__}()"
