"""Request micro-batching queue.

Single-window requests arriving from many clients are collected into
micro-batches before hitting the model: the vectorized engine's cost per
window drops sharply with batch size, so trading a small queueing delay
(``max_wait_ms``) for larger forwards raises throughput substantially.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.obs.trace import SpanContext


@dataclass
class InferenceRequest:
    """A single history window awaiting prediction.

    ``primary`` names the deployment answering the request (``None`` = the
    pool's default route, resolved when the batch snapshots its models);
    ``shadows`` name deployments that see a mirrored copy without affecting
    the response.  Single-model servers leave both at their defaults.
    ``trace`` is the submitter's captured span context — the cross-thread
    handoff that lets the batch worker parent its spans under the HTTP
    handler (or fleet tick) that enqueued the request.
    """

    window: np.ndarray  # (history, num_nodes)
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)
    key: Optional[Any] = None
    primary: Optional[str] = None
    shadows: Tuple[str, ...] = ()
    trace: Optional[SpanContext] = None


class _Shutdown:
    """Sentinel closing the queue."""


class MicroBatcher:
    """Blocking queue that groups incoming requests into micro-batches.

    ``next_batch`` blocks until at least one request is available, then keeps
    draining the queue until either ``max_batch_size`` requests are collected
    or ``max_wait_ms`` has elapsed since the first one — the classic
    size-or-deadline micro-batching policy of production model servers.
    """

    def __init__(self, max_batch_size: int = 64, max_wait_ms: float = 2.0) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = threading.Event()

    def submit(
        self,
        window: np.ndarray,
        key: Optional[Any] = None,
        primary: Optional[str] = None,
        shadows: Tuple[str, ...] = (),
        trace: Optional[SpanContext] = None,
    ) -> Future:
        """Enqueue one window; returns a future resolved by the dispatcher."""
        if self._closed.is_set():
            raise RuntimeError("batcher is closed")
        request = InferenceRequest(
            window=np.asarray(window, dtype=np.float64),
            key=key,
            primary=primary,
            shadows=tuple(shadows),
            trace=trace,
        )
        self._queue.put(request)
        return request.future

    @property
    def depth(self) -> int:
        """Requests currently waiting in the queue (approximate, lock-free)."""
        return self._queue.qsize()

    def close(self) -> None:
        """Wake up the dispatcher and refuse further submissions."""
        self._closed.set()
        self._queue.put(_Shutdown())

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def next_batch(self, poll_timeout: float = 0.1) -> Optional[List[InferenceRequest]]:
        """Collect the next micro-batch; ``None`` after :meth:`close`.

        ``poll_timeout`` bounds how long the call blocks waiting for the
        *first* request; once one arrives the batch closes after at most
        ``max_wait_ms`` more milliseconds.
        """
        try:
            first = self._queue.get(timeout=poll_timeout)
        except queue.Empty:
            return [] if not self._closed.is_set() else None
        if isinstance(first, _Shutdown):
            return None
        batch = [first]
        deadline = time.perf_counter() + self.max_wait_ms / 1000.0
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if isinstance(item, _Shutdown):
                # Preserve the shutdown signal for the next next_batch() call.
                self._queue.put(item)
                break
            batch.append(item)
        return batch
