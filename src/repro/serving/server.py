"""Threaded inference server: micro-batching, routing, caching, worker pool.

:class:`InferenceServer` fronts a :class:`~repro.serving.pool.ModelPool` of
named, versioned deployments with a concurrent serving endpoint:

1. single-window requests are routed by a pluggable
   :class:`~repro.serving.router.Router` (key-based, weighted canary splits,
   shadow mirroring) and queued by a :class:`MicroBatcher`;
2. each micro-batch snapshots one consistent ``deployment -> (predict_fn,
   version)`` view, so :meth:`promote` / :meth:`rollback` / :meth:`swap_model`
   re-point routes atomically without dropping or mixing in-flight requests;
3. windows already in the shared, deployment-namespaced cache are answered
   without touching a model; duplicates within a batch run the model once;
4. the remaining unique windows are stacked per deployment and pushed through
   the model on a thread pool (NumPy releases the GIL inside the heavy ops);
5. shadow deployments see mirrored copies of the same batches — their
   predictions feed rolling divergence metrics and warm their cache
   namespace, but never touch a client future.

The legacy single-model shape still works unchanged:
``InferenceServer(predict_fn, model_version=...)`` is a pool with exactly one
deployment on the default route, and ``swap_model`` hot-swaps it in place.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import defaultdict
from concurrent.futures import Future, ThreadPoolExecutor, wait
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.inference import PredictionResult
from repro.obs.events import log_event
from repro.obs.profiler import profiling_enabled, record_phase
from repro.obs.trace import current_context, record_span
from repro.serving.batching import InferenceRequest, MicroBatcher
from repro.serving.cache import SharedPredictionCache, prediction_cache_key
from repro.serving.pool import Deployment, ModelPool, PredictFn, resolve_predict_fn
from repro.serving.router import RouteDecision, Router
from repro.utils.jsonsafe import json_ready


class ServerStopped(RuntimeError):
    """Set on futures still unresolved when the server's shutdown deadline hits.

    Clients blocked on :meth:`Future.result` are released with this error
    instead of hanging forever behind a stuck model; the count of such
    requests is surfaced as ``stranded_requests`` in :attr:`InferenceServer.stats`.
    """


class InferenceServer:
    """Concurrent prediction service over a pool of named deployments.

    Parameters
    ----------
    predict_fn:
        Legacy single-model shim: when given, it is registered as the
        ``"default"`` deployment at ``model_version`` and becomes the default
        route.  Omit it and call :meth:`deploy` for multi-model serving.
    model_version:
        Version of the shim deployment; namespaces its cache entries.
    router:
        Maps each request to a deployment (see :mod:`repro.serving.router`).
        The base :class:`Router` sends everything to the default route.
    max_batch_size, max_wait_ms:
        Micro-batching policy (see :class:`MicroBatcher`).
    cache_size:
        **Global** cache budget in windows, shared across all deployments
        with fair-share eviction; ``0`` disables caching.
    num_workers:
        Thread-pool width for batch post-processing (hashing, cache fills,
        future resolution).  Model forward passes themselves are serialized
        behind a lock regardless: the substrate's dropout/MC toggles live on
        the shared module objects, so concurrent forwards over one model
        would race on them.  (Grad mode is thread-local and is *not* part of
        this constraint.)
    """

    #: Name of the deployment the legacy single-model constructor registers.
    DEFAULT_DEPLOYMENT = "default"

    def __init__(
        self,
        predict_fn: Optional[PredictFn] = None,
        model_version: str = "v0",
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        cache_size: int = 1024,
        num_workers: int = 2,
        router: Optional[Router] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        cache = SharedPredictionCache(capacity=cache_size) if cache_size > 0 else None
        self.pool = ModelPool(cache=cache)
        self.router = router if router is not None else Router()
        if predict_fn is not None:
            self.pool.deploy(self.DEFAULT_DEPLOYMENT, predict_fn, version=model_version)
        self.batcher = MicroBatcher(max_batch_size=max_batch_size, max_wait_ms=max_wait_ms)
        self._pool = ThreadPoolExecutor(max_workers=num_workers, thread_name_prefix="repro-infer")
        self._dispatcher: Optional[threading.Thread] = None
        self._running = False
        self._lock = threading.Lock()
        self._predict_lock = threading.Lock()
        # Every minted future until it resolves: the shutdown path fails
        # whatever is left here so no client blocks forever on a stuck model.
        self._futures_lock = threading.Lock()
        self._outstanding: set = set()
        self._stranded_requests = 0
        #: Chaos hook: called as ``fault_injector(deployment_name, stacked)``
        #: right before each primary/shadow model pass.  Raising fails that
        #: group's requests through the normal error path; blocking simulates
        #: a hung model.  ``None`` (the default) is a no-op.
        self.fault_injector: Optional[Callable[[str, np.ndarray], None]] = None
        self._requests_served = 0
        self._batches_dispatched = 0
        self._model_windows = 0
        self._shadow_windows = 0
        self._models_swapped = 0
        self._promotions = 0
        self._rollbacks = 0
        self._route_fallbacks = 0
        self._shadow_errors = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "InferenceServer":
        if self._running:
            return self
        self._running = True
        self._dispatcher = threading.Thread(target=self._dispatch_loop, daemon=True)
        self._dispatcher.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Shut down within ``timeout`` seconds, never stranding a client.

        On the happy path the dispatcher drains the queue, every in-flight
        future resolves, and the worker pool joins cleanly.  When a model
        hangs (or the dispatcher wedges), the deadline expires instead: every
        future still outstanding is failed with :class:`ServerStopped` so
        blocked ``result()`` callers wake up, the count lands in
        ``stats["stranded_requests"]``, and the worker pool is abandoned
        without waiting (its queued batches are cancelled; the stuck thread
        keeps the hung model call, nothing else).
        """
        # The lock orders stop() against submit(): any submit that saw
        # _running=True has already enqueued its request, and the queue is
        # FIFO, so that request precedes the shutdown sentinel and is drained.
        with self._lock:
            if not self._running:
                return
            self._running = False
            self.batcher.close()
        deadline = time.monotonic() + max(float(timeout), 0.0)
        dispatcher, self._dispatcher = self._dispatcher, None
        if dispatcher is not None:
            dispatcher.join(timeout=max(deadline - time.monotonic(), 0.0))
        with self._futures_lock:
            outstanding = list(self._outstanding)
        if outstanding:
            wait(outstanding, timeout=max(deadline - time.monotonic(), 0.0))
        stranded = [future for future in outstanding if not future.done()]
        for future in stranded:
            # _run_primary guards set_result with done(), so a worker that
            # eventually finishes the hung call cannot collide with this.
            future.set_exception(
                ServerStopped("server stopped before the request resolved")
            )
        clean = not stranded and (dispatcher is None or not dispatcher.is_alive())
        if stranded:
            with self._lock:
                self._stranded_requests += len(stranded)
        self._pool.shutdown(wait=clean, cancel_futures=not clean)

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Deployment management
    # ------------------------------------------------------------------ #
    @property
    def cache(self) -> Optional[SharedPredictionCache]:
        """The shared (deployment-namespaced) prediction cache."""
        return self.pool.cache

    @property
    def model_version(self) -> Optional[str]:
        """Version of the deployment on the default route (legacy surface)."""
        name = self.pool.default_name
        if name is None:
            return None
        deployment = self.pool.get(name)
        return deployment.version if deployment is not None else None

    @property
    def predict_fn(self) -> Optional[PredictFn]:
        """Predict function on the default route (legacy surface)."""
        name = self.pool.default_name
        if name is None:
            return None
        deployment = self.pool.get(name)
        return deployment.predict_fn if deployment is not None else None

    def deploy(self, name: str, model: Any, version: Optional[str] = None) -> Deployment:
        """Register (or hot-replace) a named deployment.

        ``model`` is a :class:`~repro.api.Forecaster`, a fitted UQ method, a
        bare predict function, or a checkpoint directory path.  The first
        deployment becomes the default route.
        """
        deployment = self.pool.deploy(name, model, version=version)
        log_event("serving.deploy", deployment=name, version=deployment.version)
        return deployment

    def undeploy(self, name: str) -> Deployment:
        """Retire a non-default deployment and free its cache namespace."""
        deployment = self.pool.undeploy(name)
        log_event("serving.undeploy", deployment=name, version=deployment.version)
        return deployment

    def promote(self, name: str) -> Optional[str]:
        """Atomically make ``name`` the default route; returns the previous name.

        Same zero-drop semantics as :meth:`swap_model`: batches in flight
        finish on the deployment they snapshotted.
        """
        previous = self.pool.promote(name)
        with self._lock:
            self._promotions += 1
        log_event("serving.promote", deployment=name, previous=previous)
        return previous

    def rollback(self, name: Optional[str] = None) -> str:
        """Revert the default route to the previous promotion; see
        :meth:`~repro.serving.pool.ModelPool.rollback`."""
        new_default = self.pool.rollback(name)
        with self._lock:
            self._rollbacks += 1
        log_event("serving.rollback", deployment=new_default, requested=name)
        return new_default

    @classmethod
    def from_checkpoint(
        cls,
        directory: Union[str, Path],
        model_version: Optional[str] = None,
        **kwargs,
    ) -> "InferenceServer":
        """Build an (unstarted) server over a :class:`~repro.api.Forecaster` checkpoint.

        The checkpoint directory (written by ``Forecaster.save``) fully
        describes the model, so serving needs no dataset or training code.
        ``model_version`` defaults to ``<method>-<backbone>@<dirname>``.
        """
        from repro.api import Forecaster

        directory = Path(directory)
        forecaster = Forecaster.load(directory)
        version = (
            model_version
            if model_version is not None
            else f"{forecaster.default_version()}@{directory.name}"
        )
        return cls(forecaster.predict, model_version=version, **kwargs)

    def swap_model(self, model, version: str) -> Optional[str]:
        """Atomically replace the default-route model; returns the previous version.

        ``model`` is anything with a batch ``predict`` method (a
        :class:`~repro.api.Forecaster`, a fitted UQ method) or a bare predict
        function.  Queued requests are never dropped: every batch snapshots
        one consistent ``(predict_fn, version)`` pair when it starts
        processing, so in-flight batches finish on whichever model they
        started with and later batches (and their cache keys) use the new
        one.  Versioned cache namespaces mean stale entries can never be
        served.
        """
        predict_fn = resolve_predict_fn(model)
        name = self.pool.default_name or self.DEFAULT_DEPLOYMENT
        previous = self.pool.get(name)
        self.pool.deploy(name, predict_fn, version=str(version))
        with self._lock:
            self._models_swapped += 1
        log_event(
            "serving.swap_model",
            deployment=name,
            version=str(version),
            previous=previous.version if previous is not None else None,
        )
        return previous.version if previous is not None else None

    # ------------------------------------------------------------------ #
    # Client API
    # ------------------------------------------------------------------ #
    def submit(
        self,
        window: np.ndarray,
        key: Optional[Any] = None,
        deployment: Optional[str] = None,
    ) -> Future:
        """Queue one ``(history, num_nodes)`` window; returns a future.

        ``key`` is the routing key (region, corridor, ...) handed to the
        router; servers without a key-aware router can ignore it.
        ``deployment`` pins the request at a named deployment, bypassing the
        router entirely — the escape hatch trial machinery uses to score a
        staged candidate on exactly the traffic it chooses.
        """
        window = np.asarray(window, dtype=np.float64)
        if window.ndim != 2:
            raise ValueError(f"submit expects a single (history, num_nodes) window, got {window.shape}")
        with self._lock:
            if not self._running:
                raise RuntimeError(
                    "server is not running; call start() or use it as a context manager"
                )
            # Routed inside the running check: a rejected submit must not
            # charge stateful routers (deficit counters track *served*
            # traffic, or a TrafficSplitRouter's realized shares drift).
            return self._route_and_enqueue(window, key, deployment)

    def _route_and_enqueue(
        self, window: np.ndarray, key: Optional[Any], deployment: Optional[str]
    ) -> Future:
        """Route one validated window and enqueue it (caller holds the lock)."""
        if deployment is not None:
            decision = RouteDecision(primary=deployment)
        else:
            decision = self.router.route(window, key=key)
        # Cross-thread trace handoff: capture this thread's active span so
        # the batch worker can parent its batch/model spans under it.
        future = self.batcher.submit(
            window,
            key=key,
            primary=decision.primary,
            shadows=decision.shadows,
            trace=current_context(),
        )
        with self._futures_lock:
            self._outstanding.add(future)
        future.add_done_callback(self._discard_outstanding)
        return future

    def _discard_outstanding(self, future: Future) -> None:
        with self._futures_lock:
            self._outstanding.discard(future)

    def submit_many(
        self,
        windows: Union[np.ndarray, Sequence[np.ndarray]],
        keys: Optional[Sequence[Any]] = None,
        deployments: Optional[Sequence[Optional[str]]] = None,
    ) -> List[Future]:
        """Queue a same-tick batch of windows in one shot; returns the futures.

        The batch-submit path the fleet tick uses: all windows are routed and
        enqueued under a single lock acquisition, so they land in the
        micro-batcher back-to-back and coalesce into ``O(ceil(N / batch))``
        model calls instead of N.  ``keys`` (per-window routing keys) and
        ``deployments`` (per-window pinned deployments, ``None`` entries fall
        through to the router) align with ``windows`` when given.
        """
        windows = [np.asarray(window, dtype=np.float64) for window in windows]
        for window in windows:
            if window.ndim != 2:
                raise ValueError(
                    f"submit_many expects (history, num_nodes) windows, got {window.shape}"
                )
        if keys is not None and len(keys) != len(windows):
            raise ValueError("keys must align with windows")
        if deployments is not None and len(deployments) != len(windows):
            raise ValueError("deployments must align with windows")
        with self._lock:
            if not self._running:
                raise RuntimeError(
                    "server is not running; call start() or use it as a context manager"
                )
            return [
                self._route_and_enqueue(
                    window,
                    keys[index] if keys is not None else None,
                    deployments[index] if deployments is not None else None,
                )
                for index, window in enumerate(windows)
            ]

    def predict_many(
        self,
        windows: Union[np.ndarray, Sequence[np.ndarray]],
        timeout: Optional[float] = 60.0,
        keys: Optional[Sequence[Any]] = None,
    ) -> List[PredictionResult]:
        """Submit many windows at once and block for their results (in order)."""
        futures = self.submit_many(windows, keys=keys)
        return [future.result(timeout=timeout) for future in futures]

    @property
    def stats(self) -> Dict[str, Any]:
        """Serving counters, cache statistics, and per-deployment stats.

        Strictly JSON-native (the gateway's ops endpoints serialize it
        verbatim): every value is a builtin scalar, list or dict —
        :func:`~repro.utils.jsonsafe.json_ready` coerces at the source.
        """
        with self._futures_lock:
            outstanding = len(self._outstanding)
        with self._lock:
            stats: Dict[str, Any] = {
                "running": self._running,
                "outstanding_requests": outstanding,
                "requests_served": self._requests_served,
                "batches_dispatched": self._batches_dispatched,
                "model_windows": self._model_windows,
                "shadow_windows": self._shadow_windows,
                "models_swapped": self._models_swapped,
                "promotions": self._promotions,
                "rollbacks": self._rollbacks,
                "route_fallbacks": self._route_fallbacks,
                "shadow_errors": self._shadow_errors,
                "stranded_requests": self._stranded_requests,
                "mean_batch_size": (
                    self._requests_served / self._batches_dispatched
                    if self._batches_dispatched
                    else 0.0
                ),
            }
            stats["queue_depth"] = self.batcher.depth
            stats["batch_fill_ratio"] = (
                stats["mean_batch_size"] / self.batcher.max_batch_size
            )
        if self.cache is not None:
            for name, value in self.cache.stats.items():
                stats[f"cache_{name}"] = value
        stats["default_route"] = self.pool.default_name
        stats["deployments"] = self.pool.stats
        return json_ready(stats)

    def deployment_stats(self, name: str) -> Dict[str, float]:
        """Counters and rolling shadow divergence of one deployment."""
        deployment = self.pool.get(name)
        if deployment is None:
            raise KeyError(f"no deployment named {name!r}")
        return deployment.stats

    # ------------------------------------------------------------------ #
    # Dispatcher
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                break
            if not batch:
                continue
            self._pool.submit(self._process_batch, batch)
        # Drain whatever arrived between close() and the sentinel.
        leftover = self.batcher.next_batch(poll_timeout=0.0)
        while leftover:
            self._pool.submit(self._process_batch, leftover)
            leftover = self.batcher.next_batch(poll_timeout=0.0)

    def _snapshot_routes(
        self, batch: List[InferenceRequest]
    ) -> Dict[Optional[str], Deployment]:
        """One consistent route -> deployment view for the whole batch.

        A route naming a deployment that vanished between submit and dispatch
        falls back to the default route (counted, never dropped) — promotion
        and rollback must not strand queued requests.
        """
        snapshot: Dict[Optional[str], Deployment] = {}
        fallbacks = 0
        for route in {request.primary for request in batch}:
            try:
                snapshot[route] = self.pool.resolve(route)
            except KeyError:
                snapshot[route] = self.pool.resolve(None)
                fallbacks += 1
        if fallbacks:
            with self._lock:
                self._route_fallbacks += fallbacks
        return snapshot

    def _process_batch(self, batch: List[InferenceRequest]) -> None:
        try:
            if profiling_enabled():
                # Queue wait inside the micro-batcher (submit -> dispatch);
                # "batch_wait" proper — the tick thread's blocked time — is
                # recorded by the fleet, which observes the whole round trip.
                now = time.perf_counter()
                record_phase(
                    "queue_wait",
                    sum(now - request.enqueued_at for request in batch),
                    count=len(batch),
                )
            snapshot = self._snapshot_routes(batch)
            # Group requests by the deployment object they resolved to: two
            # routes (e.g. None and an explicit name) may share a deployment.
            groups: Dict[int, Tuple[Deployment, List[InferenceRequest]]] = {}
            for request in batch:
                deployment = snapshot[request.primary]
                groups.setdefault(id(deployment), (deployment, []))[1].append(request)
            primary_results: Dict[int, PredictionResult] = {}
            for deployment, requests in groups.values():
                # Per-deployment failure domain: one model's bad checkpoint
                # must not poison requests routed at the healthy ones.
                try:
                    self._run_primary(deployment, requests, primary_results)
                except Exception as error:
                    for request in requests:
                        if not request.future.done():
                            request.future.set_exception(error)
            self._run_shadows(batch, snapshot, primary_results)
            with self._lock:
                self._requests_served += len(batch)
                self._batches_dispatched += 1
        except Exception as error:  # pragma: no cover - defensive path
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(error)

    def _predict_group(
        self,
        deployment: Deployment,
        requests: List[InferenceRequest],
        shadow: bool = False,
    ) -> Tuple[Dict[str, PredictionResult], int]:
        """Resolve each request's window through cache + one stacked model pass.

        Returns ``(key -> result, model_windows)`` covering every request;
        duplicates within the group share one key and one forward slot.
        Primary groups record ``batch.execute`` / ``model.forward`` spans
        under each traced request's captured context (shadow mirrors stay
        invisible to traces, as they are to clients).
        """
        group_start = time.perf_counter()
        model_interval: Optional[Tuple[float, float]] = None
        keys = [
            prediction_cache_key(request.window, deployment.namespace)
            for request in requests
        ]
        resolved: Dict[str, PredictionResult] = {}
        if self.cache is not None:
            for key in set(keys):
                hit = self.cache.get(deployment.namespace, key)
                if hit is not None:
                    resolved[key] = hit
        pending_keys: List[str] = []
        pending_windows: List[np.ndarray] = []
        for request, key in zip(requests, keys):
            if key not in resolved and key not in pending_keys:
                pending_keys.append(key)
                pending_windows.append(request.window)
        if pending_windows:
            stacked = np.stack(pending_windows, axis=0)
            injector = self.fault_injector
            if injector is not None:
                # Outside the predict lock: a *blocking* injector must stall
                # only this group's worker, not every deployment's forwards.
                injector(deployment.name, stacked)
            forward_start = time.perf_counter()
            with self._predict_lock:
                result = deployment.predict_fn(stacked)
            forward_end = time.perf_counter()
            model_interval = (forward_start, forward_end)
            if not shadow:
                record_phase(
                    "model_forward",
                    forward_end - forward_start,
                    count=len(pending_windows),
                )
            for offset, key in enumerate(pending_keys):
                # copy(): a plain slice would be a view pinning the whole
                # batch result in memory for the lifetime of the entry.
                sliced = result[offset].copy()
                resolved[key] = sliced
                if self.cache is not None:
                    self.cache.put(deployment.namespace, key, sliced)
        per_request = {
            id(request): resolved[key] for request, key in zip(requests, keys)
        }
        if not shadow:
            self._record_batch_spans(
                deployment, requests, group_start, len(pending_windows), model_interval
            )
        return per_request, len(pending_windows)

    def _record_batch_spans(
        self,
        deployment: Deployment,
        requests: List[InferenceRequest],
        group_start: float,
        model_windows: int,
        model_interval: Optional[Tuple[float, float]],
    ) -> None:
        """Attribute this group's batch/model intervals to the traced requests.

        Each traced request gets its own ``batch.execute`` span (parented
        under the span that submitted it, via the captured context) so every
        trace tree is complete on its own; the shared ``model.forward``
        interval nests under each.  Recorded retroactively from the worker
        thread — the explicit half of the cross-thread handoff.
        """
        end = time.perf_counter()
        for request in requests:
            if request.trace is None:
                continue
            batch_ctx = record_span(
                "batch.execute",
                request.trace,
                group_start,
                end,
                attrs={
                    "deployment": deployment.name,
                    "batch_size": len(requests),
                    "model_windows": model_windows,
                },
            )
            if batch_ctx is not None and model_interval is not None:
                record_span(
                    "model.forward",
                    batch_ctx,
                    model_interval[0],
                    model_interval[1],
                    attrs={"version": deployment.version},
                )

    def _run_primary(
        self,
        deployment: Deployment,
        requests: List[InferenceRequest],
        primary_results: Dict[int, PredictionResult],
    ) -> None:
        per_request, model_windows = self._predict_group(deployment, requests)
        for request in requests:
            result = per_request[id(request)]
            primary_results[id(request)] = result
            # A future may already hold ServerStopped if stop()'s deadline
            # fired while this batch was stuck in a hung model call.
            if not request.future.done():
                request.future.set_result(result)
        deployment.record_served(len(requests), model_windows)
        if model_windows:
            with self._lock:
                self._model_windows += model_windows

    def _run_shadows(
        self,
        batch: List[InferenceRequest],
        snapshot: Dict[Optional[str], Deployment],
        primary_results: Dict[int, PredictionResult],
    ) -> None:
        """Mirror tagged requests to shadow deployments; never touches futures.

        Shadow passes run after every client future has resolved, record
        rolling |shadow - primary| divergence on the shadow deployment, and
        warm its cache namespace; a failing shadow model is counted and
        otherwise invisible to clients.
        """
        mirrored: Dict[str, List[InferenceRequest]] = defaultdict(list)
        for request in batch:
            for shadow in request.shadows:
                mirrored[shadow].append(request)
        for shadow, requests in mirrored.items():
            deployment = self.pool.get(shadow)
            if deployment is None:
                continue
            requests = [r for r in requests if snapshot[r.primary] is not deployment]
            if not requests:
                continue
            try:
                per_request, model_windows = self._predict_group(
                    deployment, requests, shadow=True
                )
                divergences = [
                    float(np.mean(np.abs(
                        per_request[id(r)].mean - primary_results[id(r)].mean
                    )))
                    for r in requests
                    if id(r) in primary_results
                ]
                divergence = float(np.mean(divergences)) if divergences else None
                deployment.record_shadow(model_windows, divergence=divergence)
                if model_windows:
                    with self._lock:
                        self._shadow_windows += model_windows
            except Exception:
                with self._lock:
                    self._shadow_errors += 1


#: Per-method-name counters backing ``serve_method``'s default versions.
_SERVE_COUNTERS: Dict[str, "itertools.count"] = defaultdict(itertools.count)
_SERVE_COUNTERS_LOCK = threading.Lock()


def serve_method(method, model_version: Optional[str] = None, **kwargs) -> InferenceServer:
    """Build (but do not start) an :class:`InferenceServer` over a fitted UQ method.

    The default ``model_version`` is ``<method.name>-<counter>`` with a
    per-name process-wide counter — stable across runs (unlike an ``id()``
    scheme), so cache keys and version strings are reproducible, while
    distinct servings of the same method still get distinct versions.
    """
    if model_version is None:
        with _SERVE_COUNTERS_LOCK:
            model_version = f"{method.name}-{next(_SERVE_COUNTERS[method.name])}"
    return InferenceServer(
        lambda windows: method.predict(windows), model_version=model_version, **kwargs
    )
