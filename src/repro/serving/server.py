"""Threaded inference server: micro-batching + LRU caching + worker pool.

:class:`InferenceServer` turns any batch prediction function — typically the
``predict`` method of a fitted :class:`~repro.uq.base.UQMethod`, backed by the
vectorized :class:`~repro.core.inference.BatchedPredictor` — into a concurrent
serving endpoint:

1. single-window requests are queued and grouped by a :class:`MicroBatcher`;
2. windows whose key is already cached are answered without touching the
   model; duplicate windows *within* a batch run the model only once;
3. the remaining unique windows are stacked into one array and pushed through
   the model on a thread pool (NumPy releases the GIL inside the heavy ops,
   so pool workers overlap usefully);
4. per-window results are sliced out, cached, and delivered via futures.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.inference import PredictionResult
from repro.serving.batching import InferenceRequest, MicroBatcher
from repro.serving.cache import PredictionCache, prediction_cache_key

PredictFn = Callable[[np.ndarray], PredictionResult]


class InferenceServer:
    """Concurrent prediction service over a batch ``predict_fn``.

    Parameters
    ----------
    predict_fn:
        Maps a stacked window array ``(batch, history, num_nodes)`` to a
        :class:`PredictionResult` with matching leading dimension.
    model_version:
        Namespaces cache keys; bump it whenever the underlying weights or
        inference parameters change so stale entries can never be served.
    max_batch_size, max_wait_ms:
        Micro-batching policy (see :class:`MicroBatcher`).
    cache_size:
        LRU capacity in windows; ``0`` disables caching.
    num_workers:
        Thread-pool width for batch post-processing (hashing, cache fills,
        future resolution).  Model forward passes themselves are serialized
        behind a lock regardless: the substrate's dropout/MC toggles live on
        the shared module objects, so concurrent forwards over one model
        would race on them.  (Grad mode is thread-local and is *not* part of
        this constraint.)
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        model_version: str = "v0",
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        cache_size: int = 1024,
        num_workers: int = 2,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.predict_fn = predict_fn
        self.model_version = str(model_version)
        self.batcher = MicroBatcher(max_batch_size=max_batch_size, max_wait_ms=max_wait_ms)
        self.cache: Optional[PredictionCache] = (
            PredictionCache(capacity=cache_size) if cache_size > 0 else None
        )
        self._pool = ThreadPoolExecutor(max_workers=num_workers, thread_name_prefix="repro-infer")
        self._dispatcher: Optional[threading.Thread] = None
        self._running = False
        self._lock = threading.Lock()
        self._predict_lock = threading.Lock()
        self._requests_served = 0
        self._batches_dispatched = 0
        self._model_windows = 0
        self._models_swapped = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "InferenceServer":
        if self._running:
            return self
        self._running = True
        self._dispatcher = threading.Thread(target=self._dispatch_loop, daemon=True)
        self._dispatcher.start()
        return self

    def stop(self) -> None:
        # The lock orders stop() against submit(): any submit that saw
        # _running=True has already enqueued its request, and the queue is
        # FIFO, so that request precedes the shutdown sentinel and is drained.
        with self._lock:
            if not self._running:
                return
            self._running = False
            self.batcher.close()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=10.0)
            self._dispatcher = None
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Model management
    # ------------------------------------------------------------------ #
    @classmethod
    def from_checkpoint(
        cls,
        directory: Union[str, Path],
        model_version: Optional[str] = None,
        **kwargs,
    ) -> "InferenceServer":
        """Build an (unstarted) server over a :class:`~repro.api.Forecaster` checkpoint.

        The checkpoint directory (written by ``Forecaster.save``) fully
        describes the model, so serving needs no dataset or training code.
        ``model_version`` defaults to ``<method>-<backbone>@<dirname>``.
        """
        from repro.api import Forecaster

        directory = Path(directory)
        forecaster = Forecaster.load(directory)
        version = (
            model_version
            if model_version is not None
            else f"{forecaster.default_version()}@{directory.name}"
        )
        return cls(forecaster.predict, model_version=version, **kwargs)

    def swap_model(self, model, version: str) -> str:
        """Atomically replace the served model; returns the previous version.

        ``model`` is anything with a batch ``predict`` method (a
        :class:`~repro.api.Forecaster`, a fitted UQ method) or a bare predict
        function.  Queued requests are never dropped: every batch snapshots
        one consistent ``(predict_fn, version)`` pair when it starts
        processing, so in-flight batches finish on whichever model they
        started with and later batches (and their cache keys) use the new
        one.  Versioned cache keys mean stale entries can never be served.
        """
        predict_fn = model.predict if hasattr(model, "predict") else model
        if not callable(predict_fn):
            raise TypeError("swap_model needs a predict function or an object with .predict")
        with self._lock:
            previous = self.model_version
            self.predict_fn = predict_fn
            self.model_version = str(version)
            self._models_swapped += 1
        return previous

    # ------------------------------------------------------------------ #
    # Client API
    # ------------------------------------------------------------------ #
    def submit(self, window: np.ndarray) -> Future:
        """Queue one ``(history, num_nodes)`` window; returns a future."""
        window = np.asarray(window, dtype=np.float64)
        if window.ndim != 2:
            raise ValueError(f"submit expects a single (history, num_nodes) window, got {window.shape}")
        with self._lock:
            if not self._running:
                raise RuntimeError(
                    "server is not running; call start() or use it as a context manager"
                )
            return self.batcher.submit(window)

    def predict_many(
        self, windows: Union[np.ndarray, Sequence[np.ndarray]], timeout: Optional[float] = 60.0
    ) -> List[PredictionResult]:
        """Submit many windows at once and block for their results (in order)."""
        futures = [self.submit(window) for window in windows]
        return [future.result(timeout=timeout) for future in futures]

    @property
    def stats(self) -> Dict[str, float]:
        """Serving counters plus cache statistics."""
        with self._lock:
            stats: Dict[str, float] = {
                "requests_served": self._requests_served,
                "batches_dispatched": self._batches_dispatched,
                "model_windows": self._model_windows,
                "models_swapped": self._models_swapped,
                "mean_batch_size": (
                    self._requests_served / self._batches_dispatched
                    if self._batches_dispatched
                    else 0.0
                ),
            }
        if self.cache is not None:
            for name, value in self.cache.stats.items():
                stats[f"cache_{name}"] = value
        return stats

    # ------------------------------------------------------------------ #
    # Dispatcher
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                break
            if not batch:
                continue
            self._pool.submit(self._process_batch, batch)
        # Drain whatever arrived between close() and the sentinel.
        leftover = self.batcher.next_batch(poll_timeout=0.0)
        while leftover:
            self._pool.submit(self._process_batch, leftover)
            leftover = self.batcher.next_batch(poll_timeout=0.0)

    def _process_batch(self, batch: List[InferenceRequest]) -> None:
        try:
            # One consistent (model, version) snapshot per batch: a concurrent
            # swap_model() affects later batches, never a batch in flight.
            with self._lock:
                predict_fn = self.predict_fn
                model_version = self.model_version
            keys = [
                prediction_cache_key(request.window, model_version) for request in batch
            ]
            resolved: Dict[str, PredictionResult] = {}
            if self.cache is not None:
                for key in set(keys):
                    hit = self.cache.get(key)
                    if hit is not None:
                        resolved[key] = hit
            # Model pass over unique uncached windows only.
            pending_keys: List[str] = []
            pending_windows: List[np.ndarray] = []
            for request, key in zip(batch, keys):
                if key not in resolved and key not in pending_keys:
                    pending_keys.append(key)
                    pending_windows.append(request.window)
            if pending_windows:
                stacked = np.stack(pending_windows, axis=0)
                with self._predict_lock:
                    result = predict_fn(stacked)
                for offset, key in enumerate(pending_keys):
                    # copy(): a plain slice would be a view pinning the whole
                    # batch result in memory for the lifetime of the entry.
                    sliced = result[offset].copy()
                    resolved[key] = sliced
                    if self.cache is not None:
                        self.cache.put(key, sliced)
                with self._lock:
                    self._model_windows += len(pending_windows)
            for request, key in zip(batch, keys):
                request.future.set_result(resolved[key])
            with self._lock:
                self._requests_served += len(batch)
                self._batches_dispatched += 1
        except Exception as error:  # pragma: no cover - defensive path
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(error)


def serve_method(method, model_version: Optional[str] = None, **kwargs) -> InferenceServer:
    """Build (but do not start) an :class:`InferenceServer` over a fitted UQ method."""
    version = model_version if model_version is not None else f"{method.name}-{id(method):x}"
    return InferenceServer(
        lambda windows: method.predict(windows), model_version=version, **kwargs
    )
