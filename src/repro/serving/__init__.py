"""Production-style serving layer over the batched inference engine.

Three cooperating pieces:

* :class:`~repro.serving.batching.MicroBatcher` — a size-or-deadline request
  queue that groups single-window requests into micro-batches;
* :class:`~repro.serving.cache.PredictionCache` — a thread-safe LRU keyed on
  ``(model version, input hash, inference params)``;
* :class:`~repro.serving.server.InferenceServer` — the thread-pool dispatcher
  tying both to a batch predict function (usually a fitted
  :class:`~repro.uq.base.UQMethod` backed by the vectorized
  :class:`~repro.core.inference.BatchedPredictor`).

Typical usage::

    server = method.serve(max_batch_size=32, cache_size=4096)
    with server:
        results = server.predict_many(windows)   # list of PredictionResult

Servers can also boot straight from a :class:`~repro.api.Forecaster`
checkpoint directory and hot-swap models without dropping queued requests::

    server = InferenceServer.from_checkpoint("ckpt/mcdo-dcrnn")
    with server:
        ...
        server.swap_model(new_forecaster, version="v2")  # versioned cache keys
"""

from repro.serving.batching import InferenceRequest, MicroBatcher
from repro.serving.cache import PredictionCache, prediction_cache_key
from repro.serving.server import InferenceServer, serve_method

__all__ = [
    "InferenceRequest",
    "MicroBatcher",
    "PredictionCache",
    "prediction_cache_key",
    "InferenceServer",
    "serve_method",
]
