"""Production-style serving layer over the batched inference engine.

Cooperating pieces:

* :class:`~repro.serving.batching.MicroBatcher` — a size-or-deadline request
  queue that groups single-window requests into micro-batches;
* :class:`~repro.serving.cache.PredictionCache` — a thread-safe LRU keyed on
  ``(model version, input hash, inference params)``, and
  :class:`~repro.serving.cache.SharedPredictionCache` — its multi-deployment
  sibling: one global entry budget, per-deployment namespaces, fair-share
  eviction;
* :class:`~repro.serving.pool.ModelPool` /
  :class:`~repro.serving.pool.Deployment` — named, versioned models behind
  one endpoint, with an atomically re-pointable default route
  (``promote`` / ``rollback``) and per-deployment rolling stats;
* :mod:`repro.serving.router` — pluggable request routing:
  :class:`~repro.serving.router.KeyRouter` (per-region / per-corridor),
  :class:`~repro.serving.router.TrafficSplitRouter` (weighted canary
  splits), :class:`~repro.serving.router.ShadowRouter` (mirror to a
  candidate without affecting responses);
* :class:`~repro.serving.server.InferenceServer` — the thread-pool
  dispatcher tying them together.

Single-model usage (unchanged legacy surface)::

    server = method.serve(max_batch_size=32, cache_size=4096)
    with server:
        results = server.predict_many(windows)   # list of PredictionResult

Multi-model serving with canary promotion::

    server = InferenceServer(cache_size=8192, router=KeyRouter({"north": "regional"}))
    server.deploy("regional", "ckpt/mcdo-north")          # checkpoint path
    server.deploy("global", forecaster, version="v3")     # Forecaster / UQ method
    with server:
        server.submit(window, key="north")                # routed per key
        server.deploy("candidate", refitted, version="v4")
        server.router = ShadowRouter(shadows=["candidate"])  # live mirror
        ...
        server.promote("candidate")   # atomic, zero dropped requests
        server.rollback("candidate")  # or back out just as atomically
"""

from repro.serving.batching import InferenceRequest, MicroBatcher
from repro.serving.cache import (
    PredictionCache,
    SharedPredictionCache,
    prediction_cache_key,
)
from repro.serving.pool import Deployment, ModelPool, resolve_predict_fn
from repro.serving.router import (
    KeyRouter,
    RouteDecision,
    Router,
    ShadowRouter,
    TrafficSplitRouter,
)
from repro.serving.server import InferenceServer, ServerStopped, serve_method

__all__ = [
    "InferenceRequest",
    "MicroBatcher",
    "PredictionCache",
    "SharedPredictionCache",
    "prediction_cache_key",
    "Deployment",
    "ModelPool",
    "resolve_predict_fn",
    "Router",
    "RouteDecision",
    "KeyRouter",
    "TrafficSplitRouter",
    "ShadowRouter",
    "InferenceServer",
    "ServerStopped",
    "serve_method",
]
