"""Request routing policies for the multi-deployment serving pool.

A :class:`Router` maps each incoming request to a :class:`RouteDecision`:
which named deployment answers it (``primary``) and which deployments see a
mirrored copy without affecting the response (``shadows``).  ``primary=None``
means "whatever the pool's default route points at *when the batch is
processed*" — that late binding is what makes
:meth:`~repro.serving.pool.ModelPool.promote` /
:meth:`~repro.serving.pool.ModelPool.rollback` atomic: in-flight batches
keep the deployment they snapshotted, later batches see the new default.

Three built-in policies:

* :class:`KeyRouter` — dictionary routing on the request key (per-region /
  per-corridor models);
* :class:`TrafficSplitRouter` — deterministic weighted splitting (canary
  traffic shares) using deficit round-robin, so realized shares track the
  configured weights exactly rather than only in expectation;
* :class:`ShadowRouter` — mirrors every request to candidate deployments
  while an inner router (or the pool default) keeps answering.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class RouteDecision:
    """Where one request goes: the answering deployment plus mirror targets."""

    primary: Optional[str] = None        # None -> pool default at batch time
    shadows: Tuple[str, ...] = ()


class Router:
    """Base policy: everything to the pool's default deployment."""

    def route(self, window: np.ndarray, key: Optional[Any] = None) -> RouteDecision:
        """Decide the deployment(s) for one request; override in subclasses."""
        return RouteDecision()

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}()"


class KeyRouter(Router):
    """Route by request key (region, corridor, horizon bucket, ...).

    Parameters
    ----------
    routes:
        Mapping from request key to deployment name.
    default:
        Deployment for unmapped (or missing) keys; ``None`` falls through to
        the pool default.
    """

    def __init__(self, routes: Dict[Any, str], default: Optional[str] = None) -> None:
        self.routes = dict(routes)
        self.default = default

    def route(self, window: np.ndarray, key: Optional[Any] = None) -> RouteDecision:
        try:
            return RouteDecision(primary=self.routes.get(key, self.default))
        except TypeError:  # unhashable key
            return RouteDecision(primary=self.default)

    def set_route(self, key: Any, deployment: Optional[str]) -> None:
        """Re-point one key (atomic under the GIL — dict assignment).

        Fleet promotion uses this to move a region's keys onto a newly
        promoted deployment without touching the other regions' routes;
        requests already queued keep the deployment their batch snapshots.
        """
        self.routes[key] = deployment

    def set_routes(self, routes: Dict[Any, str]) -> None:
        """Re-point several keys atomically (e.g. a whole region).

        Copy-and-swap: the update builds a fresh table and publishes it in
        one attribute rebind (atomic under the GIL for *any* key type, even
        ones with Python-level ``__hash__``), so a concurrent submit never
        observes a region with half its keys on the old deployment and half
        on the new one.
        """
        replacement = dict(self.routes)
        replacement.update(routes)
        self.routes = replacement

    def __repr__(self) -> str:
        return f"KeyRouter({len(self.routes)} routes, default={self.default!r})"


class TrafficSplitRouter(Router):
    """Deterministic weighted traffic splitting across deployments.

    Uses deficit round-robin: request ``t`` goes to the deployment whose
    realized share lags its configured weight the most, so after ``t``
    requests every deployment has received ``weight * t`` requests to within
    one.  Deterministic splits keep canary experiments and tests exactly
    reproducible, with no RNG coupling between concurrent clients.

    Parameters
    ----------
    weights:
        ``{deployment name: weight}``; weights must be non-negative with a
        positive sum and are normalized internally.  ``None`` as a name
        stands for the pool's default route — or, when ``inner`` is given,
        for whatever that router decides.
    inner:
        Optional router handling the ``None`` share.  A canary split over an
        existing :class:`KeyRouter` is
        ``TrafficSplitRouter({None: 0.9, "cand": 0.1}, inner=key_router)``:
        90% of traffic keeps its per-key routing, 10% goes to the canary.
    """

    def __init__(
        self,
        weights: Dict[Optional[str], float],
        inner: Optional[Router] = None,
    ) -> None:
        if not weights:
            raise ValueError("weights must name at least one deployment")
        total = float(sum(weights.values()))
        if total <= 0.0 or any(w < 0.0 for w in weights.values()):
            raise ValueError("weights must be non-negative with a positive sum")
        self.weights: Dict[Optional[str], float] = {
            name: float(w) / total for name, w in weights.items()
        }
        self.inner = inner
        self._served: Dict[Optional[str], int] = {name: 0 for name in self.weights}
        self._total = 0
        self._lock = threading.Lock()

    def route(self, window: np.ndarray, key: Optional[Any] = None) -> RouteDecision:
        with self._lock:
            self._total += 1
            name = max(
                self.weights,
                key=lambda n: self.weights[n] * self._total - self._served[n],
            )
            self._served[name] += 1
        if name is None and self.inner is not None:
            return self.inner.route(window, key=key)
        return RouteDecision(primary=name)

    @property
    def realized_shares(self) -> Dict[Optional[str], float]:
        """Fraction of routed requests each deployment actually received."""
        with self._lock:
            if self._total == 0:
                return {name: 0.0 for name in self.weights}
            return {name: count / self._total for name, count in self._served.items()}

    def set_weights(self, weights: Dict[Optional[str], float]) -> None:
        """Atomically replace the split (e.g. widen a canary); resets shares."""
        replacement = TrafficSplitRouter(weights)
        with self._lock:
            self.weights = replacement.weights
            self._served = {name: 0 for name in self.weights}
            self._total = 0

    def __repr__(self) -> str:
        return f"TrafficSplitRouter({self.weights})"


class ShadowRouter(Router):
    """Mirror every request to candidate deployments without serving from them.

    Responses come from ``inner`` (or the pool default when ``inner`` is
    omitted); each request is *also* tagged for the ``shadows``, whose
    predictions are computed on the same batches, cached under their own
    namespace, and folded into their rolling divergence metrics — live-traffic
    evaluation with zero impact on what clients receive.
    """

    def __init__(
        self, shadows: Sequence[str], inner: Optional[Router] = None
    ) -> None:
        if not shadows:
            raise ValueError("ShadowRouter needs at least one shadow deployment")
        self.shadows: Tuple[str, ...] = tuple(dict.fromkeys(shadows))
        self.inner = inner

    def route(self, window: np.ndarray, key: Optional[Any] = None) -> RouteDecision:
        base = self.inner.route(window, key=key) if self.inner is not None else RouteDecision()
        shadows = tuple(s for s in self.shadows if s != base.primary)
        return RouteDecision(primary=base.primary, shadows=base.shadows + shadows)

    def __repr__(self) -> str:
        return f"ShadowRouter(shadows={self.shadows}, inner={self.inner!r})"
