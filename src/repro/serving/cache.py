"""Thread-safe LRU caches for prediction results.

Traffic-forecast serving sees heavy key re-use: the same sensor windows are
requested by many concurrent clients (dashboards, routing queries) within a
forecast refresh period.  Caching a :class:`~repro.core.inference.PredictionResult`
per *(model version, input window, inference parameters)* key turns those
duplicates into O(1) lookups instead of repeated MC sampling.

Two cache shapes:

* :class:`PredictionCache` — one flat LRU, the single-model cache;
* :class:`SharedPredictionCache` — one *global* entry budget shared by many
  named deployments, with per-deployment (namespace) LRU chains and
  fair-share eviction: budget pressure always evicts from the namespace
  currently holding the most entries, so one hot deployment cannot flush a
  quiet deployment's entire working set.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

import numpy as np


def prediction_cache_key(window: np.ndarray, model_version: str, **params: Any) -> str:
    """Deterministic cache key over input bytes, model version and parameters.

    The hash covers the array's dtype, shape and raw bytes, so two windows
    that are numerically equal but shaped differently never collide, and any
    change to the model version or to inference parameters (``num_samples``,
    ``temperature``, ...) invalidates the entry.
    """
    window = np.ascontiguousarray(window, dtype=np.float64)
    digest = hashlib.sha256()
    digest.update(model_version.encode("utf-8"))
    digest.update(repr(sorted(params.items())).encode("utf-8"))
    digest.update(str(window.dtype).encode("utf-8"))
    digest.update(repr(window.shape).encode("utf-8"))
    digest.update(window.tobytes())
    return digest.hexdigest()


class PredictionCache:
    """Bounded LRU mapping cache keys to prediction results.

    All operations are guarded by a lock so the cache can be shared between
    the dispatcher thread and callers inspecting :attr:`stats`.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> Optional[Any]:
        with self._lock:
            if key not in self._entries:
                self._misses += 1
                return None
            self._hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }


class SharedPredictionCache:
    """Namespaced LRU cache under one global entry budget.

    Every entry lives in a *namespace* (one per deployment version, e.g.
    ``"regional@v3"``).  Lookups and inserts are per-namespace LRU; the
    *budget* is global.  When an insert pushes the total past the budget the
    victim entry is the least-recently-used entry of the **largest**
    namespace — fair-share eviction, so a deployment can only ever be
    evicted below its fair share of the budget by its own traffic.

    Dropping a whole namespace (model retired or replaced) is O(size of that
    namespace) via :meth:`drop_namespace`.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._spaces: "Dict[str, OrderedDict[str, Any]]" = {}
        self._size = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, namespace: str, key: str) -> Optional[Any]:
        with self._lock:
            space = self._spaces.get(namespace)
            if space is None or key not in space:
                self._misses += 1
                return None
            self._hits += 1
            space.move_to_end(key)
            return space[key]

    def put(self, namespace: str, key: str, value: Any) -> None:
        with self._lock:
            space = self._spaces.get(namespace)
            if space is None:
                space = self._spaces[namespace] = OrderedDict()
            if key in space:
                space.move_to_end(key)
                space[key] = value
                return
            space[key] = value
            self._size += 1
            while self._size > self.capacity:
                victim = max(self._spaces.values(), key=len)
                victim.popitem(last=False)
                self._size -= 1
                self._evictions += 1
            # Tidy namespaces fully evicted away so max() stays cheap.
            for name in [n for n, s in self._spaces.items() if not s]:
                del self._spaces[name]

    def drop_namespace(self, namespace: str) -> int:
        """Free every entry of one namespace; returns how many were dropped."""
        with self._lock:
            space = self._spaces.pop(namespace, None)
            if space is None:
                return 0
            self._size -= len(space)
            return len(space)

    def namespace_sizes(self) -> Dict[str, int]:
        """Current entry count per live namespace (a copy)."""
        with self._lock:
            return {name: len(space) for name, space in self._spaces.items()}

    def clear(self) -> None:
        with self._lock:
            self._spaces.clear()
            self._size = 0

    def __len__(self) -> int:
        with self._lock:
            return self._size

    @property
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": self._size,
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "namespaces": len(self._spaces),
            }
