"""Named model deployments behind one serving endpoint.

:class:`ModelPool` is the registry the redesigned
:class:`~repro.serving.server.InferenceServer` fronts: each
:class:`Deployment` wraps one predict function (a
:class:`~repro.api.Forecaster`, a fitted UQ method, a bare function, or a
checkpoint directory) under a stable *name* and a *version*.  The pool owns

* the **default route** — the deployment answering requests that no router
  pins to a specific name — together with :meth:`promote` / :meth:`rollback`,
  which atomically re-point it (in-flight batches keep the deployment they
  snapshotted; zero requests are dropped or mixed across versions);
* the **shared cache budget** — all deployments share one
  :class:`~repro.serving.cache.SharedPredictionCache`, namespaced by
  ``name@version`` so a promoted or swapped model can never serve a
  predecessor's entries;
* **per-deployment stats** — request/window counters plus rolling shadow
  divergence, the signals canary and shadow evaluation read.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.core.inference import PredictionResult
from repro.serving.cache import SharedPredictionCache
from repro.streaming.monitor import RollingStat

PredictFn = Callable[[np.ndarray], PredictionResult]


def resolve_predict_fn(model: Any) -> PredictFn:
    """Normalize anything deployable into a batch predict function.

    Accepts an object with a batch ``predict`` method (a
    :class:`~repro.api.Forecaster`, a fitted UQ method, a baseline), a bare
    callable, or a checkpoint directory path written by ``Forecaster.save``.
    """
    if isinstance(model, (str, Path)):
        from repro.api import Forecaster

        model = Forecaster.load(model)
    predict = model.predict if hasattr(model, "predict") else model
    if not callable(predict):
        raise TypeError(
            "deployable models need a batch predict method, a bare predict "
            f"function, or a checkpoint path; got {type(model).__name__}"
        )
    return predict


class Deployment:
    """One named, versioned model inside a :class:`ModelPool`."""

    def __init__(
        self, name: str, version: str, predict_fn: PredictFn, metric_window: int = 256
    ) -> None:
        self.name = str(name)
        self.version = str(version)
        self.predict_fn = predict_fn
        self._lock = threading.Lock()
        self._requests_served = 0
        self._model_windows = 0
        self._shadow_windows = 0
        # Rolling mean |shadow mean - primary mean| while this deployment is
        # mirrored behind a ShadowRouter: cheap live-traffic divergence.
        self._divergence = RollingStat(metric_window)

    @property
    def namespace(self) -> str:
        """Cache namespace: one per ``(name, version)`` pair."""
        return f"{self.name}@{self.version}"

    def record_served(self, requests: int, model_windows: int) -> None:
        with self._lock:
            self._requests_served += int(requests)
            self._model_windows += int(model_windows)

    def record_shadow(self, windows: int, divergence: Optional[float] = None) -> None:
        with self._lock:
            self._shadow_windows += int(windows)
            if divergence is not None and np.isfinite(divergence):
                self._divergence.push(float(divergence))

    @property
    def stats(self) -> Dict[str, float]:
        """JSON-native counters (builtin scalars only — gateway-serializable)."""
        with self._lock:
            return {
                "version": self.version,
                "requests_served": int(self._requests_served),
                "model_windows": int(self._model_windows),
                "shadow_windows": int(self._shadow_windows),
                "shadow_divergence": float(self._divergence.mean),
            }

    def __repr__(self) -> str:
        return f"Deployment({self.name!r}, version={self.version!r})"


class ModelPool:
    """Registry of named deployments plus the default route and shared cache.

    Parameters
    ----------
    cache:
        Shared :class:`SharedPredictionCache`; ``None`` disables caching for
        every deployment.
    metric_window:
        Rolling-window length of each deployment's shadow divergence stat.
    """

    def __init__(
        self,
        cache: Optional[SharedPredictionCache] = None,
        metric_window: int = 256,
    ) -> None:
        self.cache = cache
        self.metric_window = int(metric_window)
        self._deployments: Dict[str, Deployment] = {}
        self._default: Optional[str] = None
        self._route_history: List[str] = []
        self._auto_versions: Dict[str, int] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def deploy(self, name: str, model: Any, version: Optional[str] = None) -> Deployment:
        """Register (or replace) the deployment called ``name``.

        Re-deploying an existing name is the hot-swap path: the new
        ``(predict_fn, version)`` pair becomes visible atomically, the old
        version's cache namespace is dropped, and batches already holding the
        old snapshot finish on it — exactly the legacy ``swap_model``
        semantics, per named deployment.
        """
        predict_fn = resolve_predict_fn(model)
        with self._lock:
            if version is None:
                issue = self._auto_versions.get(name, 0)
                self._auto_versions[name] = issue + 1
                version = f"v{issue}"
            previous = self._deployments.get(name)
            deployment = Deployment(
                name, version, predict_fn, metric_window=self.metric_window
            )
            self._deployments[name] = deployment
            if self._default is None:
                self._default = name
        if previous is not None and self.cache is not None:
            if previous.namespace != deployment.namespace:
                self.cache.drop_namespace(previous.namespace)
        return deployment

    def undeploy(self, name: str) -> Deployment:
        """Retire a deployment; its cache namespace is freed immediately."""
        with self._lock:
            if name == self._default:
                raise ValueError(
                    f"cannot undeploy {name!r}: it is the default route; "
                    "promote or rollback to another deployment first"
                )
            if name not in self._deployments:
                raise KeyError(f"no deployment named {name!r}")
            deployment = self._deployments.pop(name)
            self._route_history = [n for n in self._route_history if n != name]
        if self.cache is not None:
            self.cache.drop_namespace(deployment.namespace)
        return deployment

    # ------------------------------------------------------------------ #
    # Default-route management
    # ------------------------------------------------------------------ #
    def promote(self, name: str) -> Optional[str]:
        """Atomically point the default route at ``name``; returns the previous name.

        Requests whose batches already snapshotted the old default finish on
        it; every later batch (and its cache namespace) uses ``name``.
        """
        with self._lock:
            if name not in self._deployments:
                raise KeyError(f"no deployment named {name!r}")
            previous = self._default
            if previous == name:
                return previous
            if previous is not None:
                self._route_history.append(previous)
            self._default = name
            return previous

    def rollback(self, name: Optional[str] = None) -> str:
        """Revert the default route to the previous promotion; returns the new default.

        ``name`` (when given) must be the deployment being rolled back — the
        current default — and it is retired from the pool after the route has
        moved off it, so a rejected canary cannot be routed to again.
        """
        with self._lock:
            if name is not None and name != self._default:
                raise ValueError(
                    f"rollback({name!r}) does not match the default route "
                    f"{self._default!r}"
                )
            if not self._route_history:
                raise RuntimeError("no previous route to roll back to")
            rolled_back = self._default
            self._default = self._route_history.pop()
            new_default = self._default
        if name is not None and rolled_back is not None:
            self.undeploy(rolled_back)
        return new_default

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def default_name(self) -> Optional[str]:
        with self._lock:
            return self._default

    def resolve(self, name: Optional[str]) -> Deployment:
        """Deployment for a route name (``None`` = current default)."""
        with self._lock:
            target = name if name is not None else self._default
            if target is None:
                raise RuntimeError("the pool has no deployments")
            deployment = self._deployments.get(target)
            if deployment is None:
                raise KeyError(f"no deployment named {target!r}")
            return deployment

    def get(self, name: str) -> Optional[Deployment]:
        with self._lock:
            return self._deployments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return list(self._deployments)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._deployments

    def __len__(self) -> int:
        with self._lock:
            return len(self._deployments)

    @property
    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-deployment counters, keyed by deployment name."""
        with self._lock:
            deployments = dict(self._deployments)
        return {name: deployment.stats for name, deployment in deployments.items()}

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ModelPool({len(self._deployments)} deployments, "
                f"default={self._default!r})"
            )
