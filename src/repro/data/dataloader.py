"""Mini-batch loader over a :class:`~repro.data.datasets.SlidingWindowDataset`."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.data.datasets import SlidingWindowDataset


class DataLoader:
    """Iterate over mini-batches of ``(inputs, targets)`` arrays.

    Parameters
    ----------
    dataset:
        A sliding-window dataset.
    batch_size:
        Number of windows per batch.
    shuffle:
        Whether to reshuffle sample order at the start of every epoch.
    drop_last:
        Whether to drop the final, smaller batch.
    rng:
        Random generator used for shuffling (reproducible epochs).
    """

    def __init__(
        self,
        dataset: SlidingWindowDataset,
        batch_size: int = 64,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng()

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch_indices = indices[start : start + self.batch_size]
            if self.drop_last and len(batch_indices) < self.batch_size:
                break
            inputs = np.stack([self.dataset[i][0] for i in batch_indices])
            targets = np.stack([self.dataset[i][1] for i in batch_indices])
            yield inputs, targets
