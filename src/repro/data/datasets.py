"""Traffic data containers, sliding-window datasets and chronological splits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.graph.road_network import RoadNetwork


@dataclass
class TrafficData:
    """A multivariate traffic time series on a road network.

    Attributes
    ----------
    name:
        Human-readable dataset name.
    values:
        Array of shape ``(num_steps, num_nodes)`` holding the sensor readings.
    network:
        The underlying :class:`~repro.graph.RoadNetwork`.
    interval_minutes:
        Sampling interval (5 minutes for the PEMS datasets).
    """

    name: str
    values: np.ndarray
    network: RoadNetwork
    interval_minutes: int = 5

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 2:
            raise ValueError(f"values must be (num_steps, num_nodes), got {self.values.shape}")
        if self.values.shape[1] != self.network.num_nodes:
            raise ValueError(
                f"values have {self.values.shape[1]} nodes but the network has "
                f"{self.network.num_nodes}"
            )

    @property
    def num_steps(self) -> int:
        return self.values.shape[0]

    @property
    def num_nodes(self) -> int:
        return self.values.shape[1]

    def slice_steps(self, start: int, stop: int) -> "TrafficData":
        """Return a chronological slice ``[start, stop)`` of the series."""
        return TrafficData(
            name=self.name,
            values=self.values[start:stop],
            network=self.network,
            interval_minutes=self.interval_minutes,
        )

    def summary(self) -> dict:
        """Dataset statistics used by the Table I benchmark."""
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "num_edges": self.network.num_edges,
            "num_steps": self.num_steps,
            "interval_minutes": self.interval_minutes,
            "mean_flow": float(self.values.mean()),
            "max_flow": float(self.values.max()),
        }


def train_val_test_split(
    data: TrafficData, ratios: Tuple[float, float, float] = (0.6, 0.2, 0.2)
) -> Tuple[TrafficData, TrafficData, TrafficData]:
    """Chronological 6:2:2 split used throughout the paper.

    The validation split doubles as the calibration set for temperature
    scaling and conformal methods.
    """
    if len(ratios) != 3 or abs(sum(ratios) - 1.0) > 1e-8 or any(r <= 0 for r in ratios):
        raise ValueError(f"ratios must be three positive numbers summing to 1, got {ratios}")
    num_steps = data.num_steps
    train_end = int(num_steps * ratios[0])
    val_end = train_end + int(num_steps * ratios[1])
    return (
        data.slice_steps(0, train_end),
        data.slice_steps(train_end, val_end),
        data.slice_steps(val_end, num_steps),
    )


class SlidingWindowDataset:
    """Sliding input/target windows over a traffic series.

    Each sample pairs ``history`` steps of all sensors with the following
    ``horizon`` steps (paper: one hour of history, Th = 12, predicting the
    next hour, tau = 12).

    Samples are returned as arrays of shape ``(history, num_nodes)`` and
    ``(horizon, num_nodes)``.
    """

    def __init__(self, data: TrafficData, history: int = 12, horizon: int = 12) -> None:
        if history < 1 or horizon < 1:
            raise ValueError("history and horizon must be >= 1")
        usable = data.num_steps - history - horizon + 1
        if usable <= 0:
            raise ValueError(
                f"series of length {data.num_steps} too short for history={history}, horizon={horizon}"
            )
        self.data = data
        self.history = history
        self.horizon = horizon
        self._num_samples = usable

    def __len__(self) -> int:
        return self._num_samples

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        if not 0 <= index < self._num_samples:
            raise IndexError(f"index {index} out of range for {self._num_samples} samples")
        start = index
        mid = start + self.history
        end = mid + self.horizon
        values = self.data.values
        return values[start:mid], values[mid:end]

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Materialize all samples as ``(num_samples, history/horizon, num_nodes)``."""
        inputs = np.stack([self[i][0] for i in range(len(self))])
        targets = np.stack([self[i][1] for i in range(len(self))])
        return inputs, targets
