"""Feature scalers fit on the training split only.

Traffic models are trained on standardized flows; predictions (means and
standard deviations) are mapped back to the original scale before computing
metrics, exactly as in the AGCRN/DeepSTUQ reference implementations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class StandardScaler:
    """Zero-mean / unit-variance scaling with variance-aware inversion.

    ``inverse_transform_std`` maps a predicted standard deviation back to the
    data scale (multiplication by the fitted std), which is what the
    uncertainty-quantification pipeline needs for interval metrics.
    """

    def __init__(self) -> None:
        self.mean_: Optional[float] = None
        self.std_: Optional[float] = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        values = np.asarray(values, dtype=np.float64)
        self.mean_ = float(values.mean())
        std = float(values.std())
        self.std_ = std if std > 1e-12 else 1.0
        return self

    def _check_fitted(self) -> None:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler must be fitted before use")

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (np.asarray(values, dtype=np.float64) - self.mean_) / self.std_

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(values, dtype=np.float64) * self.std_ + self.mean_

    def inverse_transform_std(self, std: np.ndarray) -> np.ndarray:
        """Map standard deviations from scaled space back to data space."""
        self._check_fitted()
        return np.asarray(std, dtype=np.float64) * self.std_

    def inverse_transform_var(self, var: np.ndarray) -> np.ndarray:
        """Map variances from scaled space back to data space."""
        self._check_fitted()
        return np.asarray(var, dtype=np.float64) * (self.std_ ** 2)


class MinMaxScaler:
    """Scale values into ``[0, 1]`` based on the fitted minimum and maximum."""

    def __init__(self) -> None:
        self.min_: Optional[float] = None
        self.max_: Optional[float] = None

    def fit(self, values: np.ndarray) -> "MinMaxScaler":
        values = np.asarray(values, dtype=np.float64)
        self.min_ = float(values.min())
        self.max_ = float(values.max())
        if self.max_ - self.min_ < 1e-12:
            self.max_ = self.min_ + 1.0
        return self

    def _check_fitted(self) -> None:
        if self.min_ is None or self.max_ is None:
            raise RuntimeError("scaler must be fitted before use")

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (np.asarray(values, dtype=np.float64) - self.min_) / (self.max_ - self.min_)

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(values, dtype=np.float64) * (self.max_ - self.min_) + self.min_
