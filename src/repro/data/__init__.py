"""Traffic-data substrate: synthetic PEMS-style datasets, windowing and loaders.

The real PEMS03/04/07/08 archives are not available offline, so
:mod:`repro.data.pems` generates synthetic traffic-flow series whose graph
topology, sampling interval, length, daily/weekly seasonality and
heteroscedastic noise reproduce the statistical structure the forecasting
and uncertainty-quantification methods rely on (see DESIGN.md, substitution
table).
"""

from repro.data.synthetic import (
    StreamScenarioEvent,
    StreamingTrafficFeed,
    SyntheticTrafficConfig,
    generate_traffic,
)
from repro.data.pems import (
    DATASET_SPECS,
    DatasetSpec,
    available_datasets,
    load_pems,
)
from repro.data.datasets import SlidingWindowDataset, TrafficData, train_val_test_split
from repro.data.scalers import MinMaxScaler, StandardScaler
from repro.data.dataloader import DataLoader

__all__ = [
    "SyntheticTrafficConfig",
    "generate_traffic",
    "StreamScenarioEvent",
    "StreamingTrafficFeed",
    "DatasetSpec",
    "DATASET_SPECS",
    "available_datasets",
    "load_pems",
    "TrafficData",
    "SlidingWindowDataset",
    "train_val_test_split",
    "StandardScaler",
    "MinMaxScaler",
    "DataLoader",
]
