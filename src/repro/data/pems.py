"""Registry of the four PEMS benchmark datasets and their synthetic stand-ins.

The paper evaluates on PEMS03, PEMS04, PEMS07 and PEMS08 (traffic flow,
5-minute aggregation).  Table I of the paper records their statistics, which
are reproduced verbatim in :data:`DATASET_SPECS`.

Because the archives cannot be downloaded offline, :func:`load_pems`
synthesizes a dataset with the same number of nodes, edges and time steps
(or a proportionally scaled-down variant for the CPU-bound benchmarks) using
:mod:`repro.data.synthetic` over a :func:`repro.graph.pems_like_network`
topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.data.datasets import TrafficData
from repro.data.synthetic import SyntheticTrafficConfig, generate_traffic
from repro.graph.generators import pems_like_network


@dataclass(frozen=True)
class DatasetSpec:
    """Statistics of a PEMS dataset exactly as reported in paper Table I."""

    name: str
    num_nodes: int
    num_edges: int
    num_steps: int
    interval_minutes: int = 5
    seed: int = 0

    def scaled(self, node_fraction: float, step_fraction: float) -> "DatasetSpec":
        """Return a proportionally scaled-down spec (for CPU-sized runs)."""
        if not (0.0 < node_fraction <= 1.0 and 0.0 < step_fraction <= 1.0):
            raise ValueError("fractions must lie in (0, 1]")
        nodes = max(8, int(round(self.num_nodes * node_fraction)))
        edges = max(nodes - 1, int(round(self.num_edges * node_fraction)))
        steps = max(576, int(round(self.num_steps * step_fraction)))
        return DatasetSpec(
            name=self.name,
            num_nodes=nodes,
            num_edges=edges,
            num_steps=steps,
            interval_minutes=self.interval_minutes,
            seed=self.seed,
        )


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "PEMS03": DatasetSpec("PEMS03", num_nodes=358, num_edges=547, num_steps=26_208, seed=3),
    "PEMS04": DatasetSpec("PEMS04", num_nodes=307, num_edges=340, num_steps=16_992, seed=4),
    "PEMS07": DatasetSpec("PEMS07", num_nodes=883, num_edges=866, num_steps=28_224, seed=7),
    "PEMS08": DatasetSpec("PEMS08", num_nodes=170, num_edges=295, num_steps=17_856, seed=8),
}

#: Named size presets: fraction of nodes and of time steps to synthesize.
SIZE_PRESETS: Dict[str, tuple] = {
    "full": (1.0, 1.0),
    "small": (0.12, 0.12),
    "tiny": (0.05, 0.05),
}


def available_datasets() -> List[str]:
    """Names of the registered PEMS datasets."""
    return sorted(DATASET_SPECS)


def load_pems(
    name: str,
    size: str = "small",
    config: Optional[SyntheticTrafficConfig] = None,
    seed: Optional[int] = None,
) -> TrafficData:
    """Load (synthesize) a PEMS dataset.

    Parameters
    ----------
    name:
        One of ``PEMS03``, ``PEMS04``, ``PEMS07``, ``PEMS08``
        (case-insensitive).
    size:
        ``"full"`` matches the paper's Table I statistics exactly;
        ``"small"`` and ``"tiny"`` are proportionally scaled-down variants
        used by the unit tests and CPU benchmarks.
    config:
        Optional synthetic-generator configuration override.
    seed:
        Optional seed override (defaults to the dataset's registered seed).

    Returns
    -------
    TrafficData
        The synthetic flow series together with its road network.
    """
    key = name.upper()
    if key not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    if size not in SIZE_PRESETS:
        raise ValueError(f"unknown size {size!r}; available: {sorted(SIZE_PRESETS)}")
    spec = DATASET_SPECS[key]
    node_fraction, step_fraction = SIZE_PRESETS[size]
    if size != "full":
        spec = spec.scaled(node_fraction, step_fraction)
    effective_seed = spec.seed if seed is None else seed
    network = pems_like_network(
        spec.num_nodes, spec.num_edges, seed=effective_seed, name=f"{key}-{size}"
    )
    values = generate_traffic(network, spec.num_steps, config=config, seed=effective_seed)
    return TrafficData(
        name=f"{key} ({size})",
        values=values,
        network=network,
        interval_minutes=spec.interval_minutes,
    )
