"""Synthetic traffic-flow generator.

The generator produces 5-minute traffic-flow counts on a road network with
the structural properties that spatio-temporal forecasting and uncertainty
quantification methods exploit:

* **Daily seasonality** — a double-peak (morning / evening rush hour)
  profile, plus a weekend attenuation to create weekly structure.
* **Spatial correlation** — each node's demand is a mixture of a small
  number of latent regional signals whose mixing weights decay with
  shortest-path distance on the road graph, so neighbouring sensors move
  together (what graph convolutions learn).
* **Temporal persistence** — a smooth AR(1) regional deviation process, so
  recent history is informative (what the GRU learns).
* **Congestion incidents** — occasional capacity-drop events that propagate
  to graph neighbours, producing the irregular dips present in real data.
* **Heteroscedastic noise** — observation noise whose standard deviation
  grows with the flow level; this is precisely the aleatoric uncertainty the
  paper's mean-variance heads are designed to capture.
* **Sensor dropouts** — short spans of zero readings, as in real PEMS data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.graph.road_network import RoadNetwork


@dataclass
class SyntheticTrafficConfig:
    """Knobs of the synthetic traffic generator.

    The defaults produce flow magnitudes comparable to the PEMS datasets
    (roughly 0-600 vehicles per 5 minutes) so that error metrics live on the
    same scale as the paper's tables.
    """

    steps_per_day: int = 288  # 5-minute sampling
    num_latent_factors: int = 6
    base_flow_low: float = 80.0
    base_flow_high: float = 450.0
    morning_peak_hour: float = 8.0
    evening_peak_hour: float = 17.5
    peak_width_hours: float = 1.8
    peak_amplitude: float = 1.0
    weekend_attenuation: float = 0.72
    regional_ar_coefficient: float = 0.97
    regional_noise_scale: float = 0.05
    spatial_decay: float = 0.6
    incident_rate_per_day_per_node: float = 0.02
    incident_duration_steps: int = 18
    incident_severity: float = 0.55
    noise_floor: float = 2.0
    noise_fraction: float = 0.06
    dropout_probability: float = 0.0005
    dropout_duration_steps: int = 6


def _daily_profile(config: SyntheticTrafficConfig) -> np.ndarray:
    """Double-peak daily demand profile, normalized to [0.15, 1]."""
    hours = np.arange(config.steps_per_day) * 24.0 / config.steps_per_day
    morning = np.exp(-0.5 * ((hours - config.morning_peak_hour) / config.peak_width_hours) ** 2)
    evening = np.exp(-0.5 * ((hours - config.evening_peak_hour) / config.peak_width_hours) ** 2)
    night = 0.15 + 0.1 * np.sin(np.pi * hours / 24.0)
    profile = night + config.peak_amplitude * (morning + 0.9 * evening)
    return profile / profile.max()


def _spatial_mixing(
    network: RoadNetwork, num_factors: int, decay: float, rng: np.random.Generator
) -> np.ndarray:
    """Node-to-factor loading matrix with graph-distance decay.

    Each latent factor is anchored at a random node; the loading of node ``i``
    on that factor decays exponentially with hop distance to the anchor, so
    nearby sensors share factors and are therefore correlated.
    """
    hops = network.shortest_path_hops()
    finite_max = np.nanmax(np.where(np.isfinite(hops), hops, np.nan))
    hops = np.where(np.isfinite(hops), hops, finite_max + 1.0)
    anchors = rng.choice(network.num_nodes, size=num_factors, replace=network.num_nodes < num_factors)
    loadings = np.stack([decay ** hops[:, anchor] for anchor in anchors], axis=1)
    loadings += 0.02  # small global component so no node is factor-free
    return loadings / loadings.sum(axis=1, keepdims=True)


def generate_traffic(
    network: RoadNetwork,
    num_steps: int,
    config: Optional[SyntheticTrafficConfig] = None,
    seed: int = 0,
) -> np.ndarray:
    """Generate a ``(num_steps, num_nodes)`` traffic-flow array.

    Parameters
    ----------
    network:
        Road network whose topology drives the spatial correlation.
    num_steps:
        Number of 5-minute intervals to generate.
    config:
        Generator configuration; defaults are PEMS-like.
    seed:
        Seed of the dedicated random generator, making datasets reproducible.
    """
    if num_steps <= 0:
        raise ValueError("num_steps must be positive")
    config = config if config is not None else SyntheticTrafficConfig()
    rng = np.random.default_rng(seed)
    num_nodes = network.num_nodes

    base_flow = rng.uniform(config.base_flow_low, config.base_flow_high, size=num_nodes)
    daily = _daily_profile(config)
    loadings = _spatial_mixing(network, config.num_latent_factors, config.spatial_decay, rng)

    # Latent regional deviations: smooth AR(1) processes shared by regions.
    regional = np.zeros((num_steps, config.num_latent_factors))
    state = rng.normal(scale=config.regional_noise_scale, size=config.num_latent_factors)
    for t in range(num_steps):
        state = config.regional_ar_coefficient * state + rng.normal(
            scale=config.regional_noise_scale, size=config.num_latent_factors
        )
        regional[t] = state

    step_in_day = np.arange(num_steps) % config.steps_per_day
    day_index = np.arange(num_steps) // config.steps_per_day
    weekend = (day_index % 7 >= 5).astype(np.float64)
    day_scale = 1.0 - (1.0 - config.weekend_attenuation) * weekend

    # Deterministic seasonal mean per node: (T, N).
    seasonal = np.outer(daily[step_in_day] * day_scale, base_flow)
    # Regional multiplicative deviation: (T, N), bounded to keep flows positive.
    deviation = 1.0 + np.clip(regional @ loadings.T, -0.6, 0.6)
    flow = seasonal * deviation

    # Congestion incidents: capacity drops that spread to graph neighbours.
    expected_incidents = config.incident_rate_per_day_per_node * num_nodes * num_steps / config.steps_per_day
    num_incidents = rng.poisson(max(expected_incidents, 0.0))
    adjacency = network.adjacency_matrix(weighted=False)
    for _ in range(int(num_incidents)):
        node = int(rng.integers(num_nodes))
        start = int(rng.integers(max(num_steps - config.incident_duration_steps, 1)))
        stop = min(start + config.incident_duration_steps, num_steps)
        severity = config.incident_severity * rng.uniform(0.6, 1.0)
        flow[start:stop, node] *= 1.0 - severity
        neighbours = np.where(adjacency[node] > 0)[0]
        flow[start:stop, neighbours] *= 1.0 - 0.5 * severity

    # Heteroscedastic observation noise: sigma grows with the flow level.
    sigma = config.noise_floor + config.noise_fraction * flow
    flow = flow + rng.normal(size=flow.shape) * sigma

    # Sensor dropouts: short bursts of zero readings.
    dropout_starts = rng.random((num_steps, num_nodes)) < config.dropout_probability
    if dropout_starts.any():
        times, nodes = np.nonzero(dropout_starts)
        for t, node in zip(times, nodes):
            flow[t : t + config.dropout_duration_steps, node] = 0.0

    return np.clip(flow, 0.0, None)
