"""Synthetic traffic-flow generator.

The generator produces 5-minute traffic-flow counts on a road network with
the structural properties that spatio-temporal forecasting and uncertainty
quantification methods exploit:

* **Daily seasonality** — a double-peak (morning / evening rush hour)
  profile, plus a weekend attenuation to create weekly structure.
* **Spatial correlation** — each node's demand is a mixture of a small
  number of latent regional signals whose mixing weights decay with
  shortest-path distance on the road graph, so neighbouring sensors move
  together (what graph convolutions learn).
* **Temporal persistence** — a smooth AR(1) regional deviation process, so
  recent history is informative (what the GRU learns).
* **Congestion incidents** — occasional capacity-drop events that propagate
  to graph neighbours, producing the irregular dips present in real data.
* **Heteroscedastic noise** — observation noise whose standard deviation
  grows with the flow level; this is precisely the aleatoric uncertainty the
  paper's mean-variance heads are designed to capture.
* **Sensor dropouts** — short spans of zero readings, as in real PEMS data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.graph.road_network import RoadNetwork


@dataclass
class SyntheticTrafficConfig:
    """Knobs of the synthetic traffic generator.

    The defaults produce flow magnitudes comparable to the PEMS datasets
    (roughly 0-600 vehicles per 5 minutes) so that error metrics live on the
    same scale as the paper's tables.
    """

    steps_per_day: int = 288  # 5-minute sampling
    num_latent_factors: int = 6
    base_flow_low: float = 80.0
    base_flow_high: float = 450.0
    morning_peak_hour: float = 8.0
    evening_peak_hour: float = 17.5
    peak_width_hours: float = 1.8
    peak_amplitude: float = 1.0
    weekend_attenuation: float = 0.72
    regional_ar_coefficient: float = 0.97
    regional_noise_scale: float = 0.05
    spatial_decay: float = 0.6
    incident_rate_per_day_per_node: float = 0.02
    incident_duration_steps: int = 18
    incident_severity: float = 0.55
    noise_floor: float = 2.0
    noise_fraction: float = 0.06
    dropout_probability: float = 0.0005
    dropout_duration_steps: int = 6


def _daily_profile(config: SyntheticTrafficConfig) -> np.ndarray:
    """Double-peak daily demand profile, normalized to [0.15, 1]."""
    hours = np.arange(config.steps_per_day) * 24.0 / config.steps_per_day
    morning = np.exp(-0.5 * ((hours - config.morning_peak_hour) / config.peak_width_hours) ** 2)
    evening = np.exp(-0.5 * ((hours - config.evening_peak_hour) / config.peak_width_hours) ** 2)
    night = 0.15 + 0.1 * np.sin(np.pi * hours / 24.0)
    profile = night + config.peak_amplitude * (morning + 0.9 * evening)
    return profile / profile.max()


def _spatial_mixing(
    network: RoadNetwork, num_factors: int, decay: float, rng: np.random.Generator
) -> np.ndarray:
    """Node-to-factor loading matrix with graph-distance decay.

    Each latent factor is anchored at a random node; the loading of node ``i``
    on that factor decays exponentially with hop distance to the anchor, so
    nearby sensors share factors and are therefore correlated.
    """
    hops = network.shortest_path_hops()
    finite_max = np.nanmax(np.where(np.isfinite(hops), hops, np.nan))
    hops = np.where(np.isfinite(hops), hops, finite_max + 1.0)
    anchors = rng.choice(network.num_nodes, size=num_factors, replace=network.num_nodes < num_factors)
    loadings = np.stack([decay ** hops[:, anchor] for anchor in anchors], axis=1)
    loadings += 0.02  # small global component so no node is factor-free
    return loadings / loadings.sum(axis=1, keepdims=True)


def generate_traffic(
    network: RoadNetwork,
    num_steps: int,
    config: Optional[SyntheticTrafficConfig] = None,
    seed: int = 0,
) -> np.ndarray:
    """Generate a ``(num_steps, num_nodes)`` traffic-flow array.

    Parameters
    ----------
    network:
        Road network whose topology drives the spatial correlation.
    num_steps:
        Number of 5-minute intervals to generate.
    config:
        Generator configuration; defaults are PEMS-like.
    seed:
        Seed of the dedicated random generator, making datasets reproducible.
    """
    if num_steps <= 0:
        raise ValueError("num_steps must be positive")
    config = config if config is not None else SyntheticTrafficConfig()
    rng = np.random.default_rng(seed)
    num_nodes = network.num_nodes

    base_flow = rng.uniform(config.base_flow_low, config.base_flow_high, size=num_nodes)
    daily = _daily_profile(config)
    loadings = _spatial_mixing(network, config.num_latent_factors, config.spatial_decay, rng)

    # Latent regional deviations: smooth AR(1) processes shared by regions.
    regional = np.zeros((num_steps, config.num_latent_factors))
    state = rng.normal(scale=config.regional_noise_scale, size=config.num_latent_factors)
    for t in range(num_steps):
        state = config.regional_ar_coefficient * state + rng.normal(
            scale=config.regional_noise_scale, size=config.num_latent_factors
        )
        regional[t] = state

    step_in_day = np.arange(num_steps) % config.steps_per_day
    day_index = np.arange(num_steps) // config.steps_per_day
    weekend = (day_index % 7 >= 5).astype(np.float64)
    day_scale = 1.0 - (1.0 - config.weekend_attenuation) * weekend

    # Deterministic seasonal mean per node: (T, N).
    seasonal = np.outer(daily[step_in_day] * day_scale, base_flow)
    # Regional multiplicative deviation: (T, N), bounded to keep flows positive.
    deviation = 1.0 + np.clip(regional @ loadings.T, -0.6, 0.6)
    flow = seasonal * deviation

    # Congestion incidents: capacity drops that spread to graph neighbours.
    expected_incidents = config.incident_rate_per_day_per_node * num_nodes * num_steps / config.steps_per_day
    num_incidents = rng.poisson(max(expected_incidents, 0.0))
    adjacency = network.adjacency_matrix(weighted=False)
    for _ in range(int(num_incidents)):
        node = int(rng.integers(num_nodes))
        start = int(rng.integers(max(num_steps - config.incident_duration_steps, 1)))
        stop = min(start + config.incident_duration_steps, num_steps)
        severity = config.incident_severity * rng.uniform(0.6, 1.0)
        flow[start:stop, node] *= 1.0 - severity
        neighbours = np.where(adjacency[node] > 0)[0]
        flow[start:stop, neighbours] *= 1.0 - 0.5 * severity

    # Heteroscedastic observation noise: sigma grows with the flow level.
    sigma = config.noise_floor + config.noise_fraction * flow
    flow = flow + rng.normal(size=flow.shape) * sigma

    # Sensor dropouts: short bursts of zero readings.
    dropout_starts = rng.random((num_steps, num_nodes)) < config.dropout_probability
    if dropout_starts.any():
        times, nodes = np.nonzero(dropout_starts)
        for t, node in zip(times, nodes):
            flow[t : t + config.dropout_duration_steps, node] = 0.0

    return np.clip(flow, 0.0, None)


# ---------------------------------------------------------------------- #
# Streaming feeds with scripted drift scenarios
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class StreamScenarioEvent:
    """One scripted perturbation of a :class:`StreamingTrafficFeed`.

    Parameters
    ----------
    kind:
        ``"regime_shift"`` rescales the noise level (and optionally the flow
        level) from ``start`` onward; ``"incident_storm"`` injects a burst of
        capacity-drop incidents; ``"dropout_burst"`` blanks a random subset
        of sensors for the event span.
    start / duration:
        Step range the event covers; ``duration=None`` runs to the end of
        the stream (the natural shape for a regime shift).
    noise_scale / flow_scale:
        Regime-shift multipliers on the heteroscedastic noise sigma and the
        underlying clean flow.
    rate / severity:
        Incident-storm intensity: expected incidents per step, and the
        capacity fraction each one removes (spreading at half strength to
        graph neighbours, like the offline generator).
    node_fraction:
        Fraction of sensors a dropout burst silences.
    """

    kind: str
    start: int
    duration: Optional[int] = None
    noise_scale: float = 1.0
    flow_scale: float = 1.0
    rate: float = 0.2
    severity: float = 0.5
    node_fraction: float = 0.3

    _KINDS = ("regime_shift", "incident_storm", "dropout_burst")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"kind must be one of {self._KINDS}, got {self.kind!r}")
        if self.start < 0 or (self.duration is not None and self.duration < 1):
            raise ValueError("start must be >= 0 and duration >= 1 (or None)")

    def span(self, num_steps: int) -> Tuple[int, int]:
        """The clipped ``[start, stop)`` step range within a stream."""
        stop = num_steps if self.duration is None else min(self.start + self.duration, num_steps)
        return min(self.start, num_steps), stop


class StreamingTrafficFeed:
    """An iterable live-traffic feed with scripted drift scenarios.

    The feed generates the same structural ingredients as
    :func:`generate_traffic` — double-peak seasonality, graph-correlated
    AR(1) regional deviations, heteroscedastic noise — but keeps the clean
    signal, the noise sigma and the scripted perturbations separate, so
    streaming experiments can shift the distribution mid-stream and know
    exactly what changed:

    * ``clean`` — the noise-free flow, the oracle a perfect model would
      predict (regime ``flow_scale`` and incident storms applied);
    * ``noise_sigma`` — the per-entry observation-noise level (regime
      ``noise_scale`` applied);
    * ``values`` — what the sensors report: clean + noise, with dropout
      bursts encoded as NaN (``nan_dropouts=True``, exercising the runner's
      partial-observation path) or as zero readings (as in raw PEMS data).

    Iterating yields one ``(num_nodes,)`` observation row per step.
    """

    def __init__(
        self,
        network: RoadNetwork,
        num_steps: int,
        config: Optional[SyntheticTrafficConfig] = None,
        seed: int = 0,
        events: Sequence[StreamScenarioEvent] = (),
        nan_dropouts: bool = True,
    ) -> None:
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        self.network = network
        self.num_steps = int(num_steps)
        self.config = config if config is not None else SyntheticTrafficConfig()
        self.seed = int(seed)
        self.events = tuple(events)
        self.nan_dropouts = bool(nan_dropouts)
        self._generate()

    @property
    def num_nodes(self) -> int:
        return self.network.num_nodes

    # ------------------------------------------------------------------ #
    def _generate(self) -> None:
        config, num_steps = self.config, self.num_steps
        rng = np.random.default_rng(self.seed)
        num_nodes = self.network.num_nodes

        base_flow = rng.uniform(config.base_flow_low, config.base_flow_high, size=num_nodes)
        daily = _daily_profile(config)
        loadings = _spatial_mixing(
            self.network, config.num_latent_factors, config.spatial_decay, rng
        )
        regional = np.zeros((num_steps, config.num_latent_factors))
        state = rng.normal(scale=config.regional_noise_scale, size=config.num_latent_factors)
        for t in range(num_steps):
            state = config.regional_ar_coefficient * state + rng.normal(
                scale=config.regional_noise_scale, size=config.num_latent_factors
            )
            regional[t] = state

        step_in_day = np.arange(num_steps) % config.steps_per_day
        day_index = np.arange(num_steps) // config.steps_per_day
        weekend = (day_index % 7 >= 5).astype(np.float64)
        day_scale = 1.0 - (1.0 - config.weekend_attenuation) * weekend
        seasonal = np.outer(daily[step_in_day] * day_scale, base_flow)
        deviation = 1.0 + np.clip(regional @ loadings.T, -0.6, 0.6)
        clean = seasonal * deviation

        noise_scale = np.ones((num_steps, 1))
        adjacency = self.network.adjacency_matrix(weighted=False)
        dropout_mask = np.zeros((num_steps, num_nodes), dtype=bool)
        for event in self.events:
            start, stop = event.span(num_steps)
            if stop <= start:
                continue
            if event.kind == "regime_shift":
                clean[start:stop] *= event.flow_scale
                noise_scale[start:stop] *= event.noise_scale
            elif event.kind == "incident_storm":
                count = rng.poisson(max(event.rate * (stop - start), 0.0))
                for _ in range(int(count)):
                    node = int(rng.integers(num_nodes))
                    at = int(rng.integers(start, stop))
                    until = min(at + config.incident_duration_steps, num_steps)
                    severity = event.severity * rng.uniform(0.6, 1.0)
                    clean[at:until, node] *= 1.0 - severity
                    neighbours = np.where(adjacency[node] > 0)[0]
                    clean[at:until, neighbours] *= 1.0 - 0.5 * severity
            elif event.kind == "dropout_burst":
                hit = max(1, int(round(event.node_fraction * num_nodes)))
                nodes = rng.choice(num_nodes, size=hit, replace=False)
                dropout_mask[start:stop, nodes] = True

        clean = np.clip(clean, 0.0, None)
        sigma = (config.noise_floor + config.noise_fraction * clean) * noise_scale
        values = np.clip(clean + rng.normal(size=clean.shape) * sigma, 0.0, None)
        values[dropout_mask] = np.nan if self.nan_dropouts else 0.0

        self.clean = clean
        self.noise_sigma = sigma
        self.values = values
        self.dropout_mask = dropout_mask

    # ------------------------------------------------------------------ #
    @classmethod
    def scenario(
        cls,
        network: RoadNetwork,
        name: str,
        num_steps: int = 1000,
        config: Optional[SyntheticTrafficConfig] = None,
        seed: int = 0,
        **overrides,
    ) -> "StreamingTrafficFeed":
        """Canonical scripted scenarios for the streaming experiments.

        ``"regime_shift"`` — observation noise 2.5x from mid-stream onward
        (the static-conformal coverage killer); ``"incident_storm"`` — a
        dense burst of capacity-drop incidents in the middle third;
        ``"dropout_burst"`` — 40% of sensors silenced for a twelfth of the
        stream.  Any :class:`StreamScenarioEvent` field can be overridden
        via keyword arguments; remaining keywords go to the feed constructor
        (e.g. ``nan_dropouts``).
        """
        half, third, twelfth = num_steps // 2, num_steps // 3, max(num_steps // 12, 1)
        defaults = {
            "regime_shift": dict(kind="regime_shift", start=half, noise_scale=2.5),
            "incident_storm": dict(
                kind="incident_storm", start=third,
                duration=max(num_steps // 6, 1), rate=0.3, severity=0.6,
            ),
            "dropout_burst": dict(
                kind="dropout_burst", start=half, duration=twelfth, node_fraction=0.4
            ),
        }
        if name not in defaults:
            raise ValueError(
                f"unknown scenario {name!r}; available: {', '.join(defaults)}"
            )
        event_kwargs = defaults[name]
        for field_name in (
            "start", "duration", "noise_scale", "flow_scale",
            "rate", "severity", "node_fraction",
        ):
            if field_name in overrides:
                event_kwargs[field_name] = overrides.pop(field_name)
        events = [StreamScenarioEvent(**event_kwargs)]
        return cls(network, num_steps, config=config, seed=seed, events=events, **overrides)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.num_steps

    def __iter__(self) -> Iterator[np.ndarray]:
        for t in range(self.num_steps):
            yield self.values[t].copy()
