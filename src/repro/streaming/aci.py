"""Per-horizon adaptive conformal inference for streaming forecasts.

The batch conformal method (:class:`~repro.uq.conformal.LocallyWeightedConformal`)
fixes one nonconformity quantile on a static calibration split; under
distribution shift that frozen quantile silently loses coverage.
:class:`AdaptiveConformalCalibrator` keeps the calibration *online*: every
resolved observation updates (per step-ahead horizon)

* a ring buffer of recent locally-weighted nonconformity scores
  ``r = |y - mu| / sigma``, and
* in ``"aci"`` mode, the Gibbs & Candes (2021) adaptive significance level
  ``alpha_{t+1} = alpha_t + gamma * (alpha - err_t)``, where ``err_t`` is the
  realized miscoverage of the interval that was actually emitted.

Three modes cover the streaming experiments:

``"static"``
    Split-conformal baseline: scores accumulate until the buffer first
    fills, then freeze — the behaviour whose coverage degrades under drift.
``"rolling"``
    The rolling-nonconformity-score variant: fixed ``alpha``, quantile over
    the sliding score window, so the width tracks the recent residual scale.
``"aci"``
    Rolling scores *plus* the adaptive ``alpha_t`` update, the full adaptive
    conformal inference scheme (fastest recovery after a regime shift).

Intervals are emitted through the shared Gaussian interface exactly like the
batch conformal method: the per-horizon half-width ``q_h * sigma`` is folded
back into a pseudo standard deviation so ``mean +- 1.96 * std`` reproduces
the conformal interval.

Methods that carry **native asymmetric bounds** on their
:class:`~repro.core.inference.PredictionResult` (quantile regression, CFRNN)
are calibrated in *bound space* instead (conformalized quantile regression,
Romano et al. 2019): the nonconformity score is ``max(lower - y, y - upper)``
and the emitted interval is ``[lower - m_h, upper + m_h]`` with the additive
per-horizon margin ``m_h`` tracking the stream — the lower and upper offsets
stay independently placed rather than being collapsed into a symmetric
pseudo-std interval.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.inference import PredictionResult
from repro.metrics.uncertainty import Z_95, conformal_quantile_level, norm_ppf
from repro.utils.serialization import load_checkpoint, save_checkpoint

#: Recognized calibration modes.
ACI_MODES = ("static", "rolling", "aci")

#: Recognized interval-shape modes: symmetric scaled intervals, native
#: (asymmetric, CQR-style) bound calibration, or auto-detection from the
#: first forecast's :attr:`PredictionResult.has_native_bounds`.
ACI_INTERVAL_MODES = ("scaled", "native", "auto")

#: On-disk format revision of :meth:`AdaptiveConformalCalibrator.save`.
ACI_FORMAT_VERSION = 1


def _sorted_quantile(sorted_values: List[float], level: float) -> float:
    """Linear-interpolated quantile of an already-sorted list.

    Bit-identical to ``np.quantile(values, level)`` (the default ``linear``
    method), including NumPy's symmetric lerp — ``b - (b - a) * (1 - t)``
    when the fractional part is >= 0.5 — so switching the calibrator to the
    sorted ring cannot move any pinned golden value.
    """
    n = len(sorted_values)
    position = min(max(level, 0.0), 1.0) * (n - 1)
    low = int(position)
    t = position - low
    a = sorted_values[low]
    if t == 0.0 or low + 1 >= n:
        return a
    b = sorted_values[low + 1]
    if t >= 0.5:
        return b - (b - a) * (1.0 - t)
    return a + (b - a) * t


@dataclass
class ACIConfig:
    """Knobs of the online conformal calibrator.

    Parameters
    ----------
    significance:
        Target miscoverage level ``alpha`` (0.05 for 95% intervals).
    gamma:
        Learning rate of the ``alpha_t`` update (``"aci"`` mode only).
    window:
        Ring-buffer capacity in *scores* per horizon (one observed sensor
        contributes one score), not in steps.
    min_scores:
        Below this many buffered scores the calibrator falls back to the
        Gaussian ``norm_ppf(1 - alpha_t / 2)`` multiplier.
    mode:
        One of :data:`ACI_MODES`.
    alpha_clip:
        ``alpha_t`` is clipped to ``[alpha_clip, 1 - alpha_clip]`` so the
        adaptive level can never saturate into a degenerate interval.
    interval_mode:
        One of :data:`ACI_INTERVAL_MODES`.  ``"scaled"`` always emits
        symmetric ``mean ± q_h * sigma`` intervals; ``"native"`` calibrates
        the method's own asymmetric bounds with additive CQR margins;
        ``"auto"`` (default) picks per stream from the first forecast.
    """

    significance: float = 0.05
    gamma: float = 0.01
    window: int = 2000
    min_scores: int = 30
    mode: str = "aci"
    alpha_clip: float = 1e-3
    interval_mode: str = "auto"

    def __post_init__(self) -> None:
        if not 0.0 < self.significance < 1.0:
            raise ValueError("significance must lie in (0, 1)")
        if self.gamma < 0.0:
            raise ValueError("gamma must be non-negative")
        if self.window < 1 or self.min_scores < 1:
            raise ValueError("window and min_scores must be >= 1")
        if self.mode not in ACI_MODES:
            raise ValueError(f"mode must be one of {ACI_MODES}, got {self.mode!r}")
        if self.interval_mode not in ACI_INTERVAL_MODES:
            raise ValueError(
                f"interval_mode must be one of {ACI_INTERVAL_MODES}, "
                f"got {self.interval_mode!r}"
            )


class AdaptiveConformalCalibrator:
    """Online per-horizon conformal calibration state.

    The calibrator wraps any UQ method's :class:`PredictionResult`: the
    method supplies the point forecast and the local scale ``sigma`` (its
    predictive std; methods without one fall back to unit scale, i.e. plain
    absolute-residual conformal), and the calibrator turns them into
    width-adapted intervals whose per-horizon multiplier tracks the stream.
    """

    #: ``_sorted`` is a derived mirror of the ``aci.scores`` ring:
    #: ``set_state`` rebuilds it from the restored buffers.
    _CHECKPOINT_EXEMPT = ("_sorted",)

    def __init__(self, horizon: int, config: Optional[ACIConfig] = None, **kwargs) -> None:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if config is not None and kwargs:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.horizon = int(horizon)
        self.config = config if config is not None else ACIConfig(**kwargs)
        cfg = self.config
        self.alpha_t = np.full(self.horizon, cfg.significance, dtype=np.float64)
        self._scores = np.zeros((self.horizon, cfg.window), dtype=np.float64)
        self._count = np.zeros(self.horizon, dtype=np.int64)
        self._pos = np.zeros(self.horizon, dtype=np.int64)
        self._frozen = np.zeros(self.horizon, dtype=bool)
        # Sorted mirror of each ring buffer (bisect insert/remove), so the
        # per-step quantile read is an O(1) index instead of an O(n log n)
        # re-sort of the whole window.
        self._sorted: List[List[float]] = [[] for _ in range(self.horizon)]
        # Resolved interval shape: None until "auto" has seen a forecast,
        # then latched (and persisted) so the buffered scores keep one
        # consistent interpretation — multipliers or additive margins.
        self._native: Optional[bool] = (
            None if cfg.interval_mode == "auto" else cfg.interval_mode == "native"
        )
        self.updates = 0

    # ------------------------------------------------------------------ #
    # Interval emission
    # ------------------------------------------------------------------ #
    def quantiles(self) -> np.ndarray:
        """Current per-horizon half-width multipliers ``q_h``.

        With enough buffered scores this is the finite-sample-corrected
        empirical quantile of the rolling nonconformity scores at level
        ``1 - alpha_t[h]``; before that it is the Gaussian multiplier at the
        same level, so early-stream intervals are sensible rather than empty.
        """
        cfg = self.config
        quantiles = np.empty(self.horizon, dtype=np.float64)
        for h in range(self.horizon):
            level = 1.0 - self.alpha_t[h]
            n = int(self._count[h])
            if n < cfg.min_scores:
                quantiles[h] = norm_ppf(0.5 + level / 2.0)
                continue
            corrected = conformal_quantile_level(n, self.alpha_t[h])
            quantiles[h] = _sorted_quantile(self._sorted[h], corrected)
        return quantiles

    def margins(self) -> np.ndarray:
        """Current per-horizon *additive* margins ``m_h`` (native-bound mode).

        The CQR analogue of :meth:`quantiles`: the finite-sample-corrected
        empirical quantile of the buffered ``max(lower - y, y - upper)``
        scores at level ``1 - alpha_t[h]``.  Before ``min_scores`` the margin
        is zero, so early-stream intervals are the method's own bounds.
        Margins may be negative — CQR legitimately *shrinks* native bounds
        that prove too conservative on the stream.
        """
        cfg = self.config
        margins = np.zeros(self.horizon, dtype=np.float64)
        for h in range(self.horizon):
            n = int(self._count[h])
            if n < cfg.min_scores:
                continue
            corrected = conformal_quantile_level(n, self.alpha_t[h])
            margins[h] = _sorted_quantile(self._sorted[h], corrected)
        return margins

    @staticmethod
    def _scale(result: PredictionResult) -> np.ndarray:
        """Local nonconformity scale: the predictive std, unit where zero."""
        std = result.std
        return np.where(std > 1e-12, std, 1.0)

    def uses_native(self, result: Optional[PredictionResult] = None) -> bool:
        """Whether this calibrator works in native-bound (asymmetric) space.

        In ``"auto"`` interval mode the answer is latched from the first
        forecast that reaches the calibrator; until then it is ``False``.
        """
        if self._native is None and result is not None:
            self._native = bool(result.has_native_bounds)
        return bool(self._native)

    def score(
        self,
        observed: np.ndarray,
        mean: np.ndarray,
        scale: np.ndarray,
        lower: Optional[np.ndarray] = None,
        upper: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-sensor nonconformity scores of one resolved horizon row.

        Native-bound calibrators score against the method's own bounds
        (``max(lower - y, y - upper)``, the CQR score); scaled calibrators
        use the locally-weighted residual ``|y - mean| / scale``.  All
        arrays are 1-D over the *observed* sensors.
        """
        if self.uses_native() and lower is not None and upper is not None:
            return np.maximum(lower - observed, observed - upper)
        return np.abs(observed - mean) / scale

    def native_reference(self, result: PredictionResult) -> Tuple[np.ndarray, np.ndarray]:
        """The bounds native-mode nonconformity is scored/margined against.

        The method's own bounds when it supplies them; otherwise — a
        Gaussian-bound model meeting a native-latched calibrator, e.g. a
        refit candidate of a different family trialed on a quantile stream —
        per-horizon Gaussian bounds at level ``1 - alpha_t`` synthesized
        from the predictive std, so the additive (data-unit) margins stay
        unit-consistent instead of being misread as multipliers.
        """
        if result.has_native_bounds:
            return result.lower, result.upper
        half = np.array(
            [norm_ppf(0.5 + (1.0 - alpha) / 2.0) for alpha in self.alpha_t]
        ).reshape(1, -1, 1) * self._scale(result)
        return result.mean - half, result.mean + half

    def intervals(self, result: PredictionResult) -> Tuple[np.ndarray, np.ndarray]:
        """Width-adapted ``(lower, upper)`` bounds for a batch result."""
        if result.mean.shape[1] != self.horizon:
            raise ValueError(
                f"result has horizon {result.mean.shape[1]}, calibrator expects {self.horizon}"
            )
        if self.uses_native(result):
            native_lower, native_upper = self.native_reference(result)
            margin = self.margins().reshape(1, -1, 1)
            lower = native_lower - margin
            upper = native_upper + margin
            # A strongly negative margin could cross the bounds; clamp at the
            # midpoint so the interval degenerates rather than inverts.
            mid = 0.5 * (lower + upper)
            return np.minimum(lower, mid), np.maximum(upper, mid)
        half = self.quantiles().reshape(1, -1, 1) * self._scale(result)
        return result.mean - half, result.mean + half

    def calibrate(self, result: PredictionResult) -> PredictionResult:
        """Result with the conformal interval folded back in.

        Scaled (symmetric) calibration folds the half-width into a pseudo
        std, so ``calibrated.interval()`` (the shared 95% Gaussian
        interface) reproduces the adaptive conformal bounds exactly.
        Native-bound calibration instead attaches the calibrated asymmetric
        bounds (``calibrated.lower`` / ``calibrated.upper``) — the Gaussian
        interface then sees the right *width* but not the asymmetric
        placement, which only bound-aware consumers preserve.
        """
        return self.fold(result, *self.intervals(result))

    def fold(
        self, result: PredictionResult, lower: np.ndarray, upper: np.ndarray
    ) -> PredictionResult:
        """:meth:`calibrate` with the bounds already computed.

        Lets the per-step hot path run :meth:`intervals` once and reuse its
        output, instead of re-deriving the per-horizon margins twice.
        """
        if self.uses_native(result):
            return result.replace_interval_bounds(lower, upper)
        return result.replace_interval_std((upper - lower) / (2.0 * Z_95))

    # ------------------------------------------------------------------ #
    # Online updates
    # ------------------------------------------------------------------ #
    def update(
        self,
        horizon_index: int,
        scores: np.ndarray,
        miscoverage: Optional[float] = None,
    ) -> None:
        """Fold one resolved horizon row into the calibration state.

        Parameters
        ----------
        horizon_index:
            Which step-ahead the scores belong to (0-based).
        scores:
            Nonconformity scores ``|y - mu| / sigma`` of the observed
            sensors (already masked; may be empty).
        miscoverage:
            Realized miscoverage ``err_t`` of the interval emitted for this
            row (fraction of observed sensors outside it); drives the
            ``alpha_t`` update in ``"aci"`` mode.
        """
        h = int(horizon_index)
        if not 0 <= h < self.horizon:
            raise IndexError(f"horizon index {h} out of range for horizon {self.horizon}")
        cfg = self.config
        scores = np.asarray(scores, dtype=np.float64).reshape(-1)
        scores = scores[np.isfinite(scores)]
        self.updates += 1
        if cfg.mode == "aci" and miscoverage is not None and cfg.gamma > 0.0:
            self.alpha_t[h] = np.clip(
                self.alpha_t[h] + cfg.gamma * (cfg.significance - float(miscoverage)),
                cfg.alpha_clip,
                1.0 - cfg.alpha_clip,
            )
        if scores.size == 0 or self._frozen[h]:
            return
        if scores.size >= cfg.window:
            scores = scores[-cfg.window :]
        # Ring write + sorted-mirror maintenance: each insert evicts the
        # oldest score once the window is full, removing it from the sorted
        # list by bisect before the replacement is insort-ed back in.
        sorted_h = self._sorted[h]
        pos = int(self._pos[h])
        count = int(self._count[h])
        row = self._scores[h]
        for value in scores:
            value = float(value)
            if count == cfg.window:
                evicted = row[pos]
                sorted_h.pop(bisect_left(sorted_h, evicted))
            else:
                count += 1
            row[pos] = value
            insort(sorted_h, value)
            pos = (pos + 1) % cfg.window
        self._pos[h] = pos
        self._count[h] = count
        if cfg.mode == "static" and count == cfg.window:
            # Split-conformal baseline: calibration set fixed once full.
            self._frozen[h] = True

    def update_batch(
        self,
        result: PredictionResult,
        targets: np.ndarray,
        lower: Optional[np.ndarray] = None,
        upper: Optional[np.ndarray] = None,
    ) -> None:
        """Warm-start from a batch of resolved forecasts (e.g. a validation split).

        ``targets`` aligns with ``result`` as ``(batch, horizon, nodes)``;
        NaN targets are skipped.  When emitted bounds are supplied the
        realized per-horizon miscoverage also drives the ``alpha_t`` update.
        """
        targets = np.asarray(targets, dtype=np.float64)
        if targets.shape != result.mean.shape:
            raise ValueError(
                f"targets {targets.shape} do not align with result {result.mean.shape}"
            )
        if self.uses_native(result):
            native_lower, native_upper = self.native_reference(result)
            scores = np.maximum(native_lower - targets, targets - native_upper)
        else:
            scale = self._scale(result)
            scores = np.abs(targets - result.mean) / scale
        for h in range(self.horizon):
            row_scores = scores[:, h, :][np.isfinite(scores[:, h, :])]
            miss: Optional[float] = None
            if lower is not None and upper is not None:
                t = targets[:, h, :]
                valid = np.isfinite(t)
                if valid.any():
                    outside = (t < lower[:, h, :]) | (t > upper[:, h, :])
                    miss = float(outside[valid].mean())
            self.update(h, row_scores, miscoverage=miss)

    def reset_scores(self, keep_alpha: bool = True) -> None:
        """Drop the buffered scores (and any static freeze) for recalibration.

        Used by the drift-recovery path: after a confirmed regime change the
        pre-shift scores only slow adaptation down, so the buffers refill
        from post-shift data.  ``keep_alpha=False`` also resets ``alpha_t``.
        """
        self._scores[:] = 0.0
        self._count[:] = 0
        self._pos[:] = 0
        self._frozen[:] = False
        self._sorted = [[] for _ in range(self.horizon)]
        if not keep_alpha:
            self.alpha_t[:] = self.config.significance

    # ------------------------------------------------------------------ #
    # State protocol (matches UQMethod.get_state / set_state)
    # ------------------------------------------------------------------ #
    def get_state(self) -> Dict[str, Any]:
        """Full calibration state as ``{"meta": ..., "arrays": ...}``."""
        return {
            "meta": {
                "kind": "aci",
                "format_version": ACI_FORMAT_VERSION,
                "horizon": self.horizon,
                "updates": self.updates,
                "native": self._native,
                "config": asdict(self.config),
            },
            "arrays": {
                "aci.alpha_t": self.alpha_t.copy(),
                "aci.scores": self._scores.copy(),
                "aci.count": self._count.copy(),
                "aci.pos": self._pos.copy(),
                "aci.frozen": self._frozen.copy(),
            },
        }

    def set_state(self, state: Dict[str, Any]) -> "AdaptiveConformalCalibrator":
        """Restore a :meth:`get_state` snapshot (bit-identical round trip)."""
        meta = state["meta"]
        if meta.get("kind") != "aci":
            raise ValueError(f"state was saved by {meta.get('kind')!r}, not an ACI calibrator")
        if int(meta["horizon"]) != self.horizon:
            raise ValueError(
                f"state has horizon {meta['horizon']}, calibrator expects {self.horizon}"
            )
        self.config = ACIConfig(**meta["config"])
        self.updates = int(meta.get("updates", 0))
        if self.config.interval_mode != "auto":
            self._native = self.config.interval_mode == "native"
        elif "native" in meta:
            native = meta["native"]
            self._native = None if native is None else bool(native)
        else:
            # Checkpoint written before native-bound support: every buffered
            # score is a dimensionless scaled multiplier, so latch scaled when
            # the buffers are warm — re-latching them as native would misread
            # the multipliers as additive data-unit margins.
            self._native = False if int(meta.get("updates", 0)) > 0 else None
        arrays = state["arrays"]
        self.alpha_t = np.asarray(arrays["aci.alpha_t"], dtype=np.float64).copy()
        self._scores = np.asarray(arrays["aci.scores"], dtype=np.float64).copy()
        self._count = np.asarray(arrays["aci.count"], dtype=np.int64).copy()
        self._pos = np.asarray(arrays["aci.pos"], dtype=np.int64).copy()
        self._frozen = np.asarray(arrays["aci.frozen"], dtype=bool).copy()
        self._sorted = [
            sorted(self._scores[h, : int(self._count[h])].tolist())
            for h in range(self.horizon)
        ]
        return self

    def save(self, directory: Union[str, Path]) -> Path:
        """Persist the calibration state as a directory checkpoint."""
        state = self.get_state()
        return save_checkpoint(Path(directory), state["meta"], state["arrays"])

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "AdaptiveConformalCalibrator":
        """Rebuild a calibrator from a :meth:`save` checkpoint directory."""
        meta, arrays = load_checkpoint(Path(directory))
        version = meta.get("format_version")
        if version != ACI_FORMAT_VERSION:
            raise ValueError(
                f"unsupported ACI checkpoint format {version!r} "
                f"(this build reads version {ACI_FORMAT_VERSION})"
            )
        calibrator = cls(int(meta["horizon"]), config=ACIConfig(**meta["config"]))
        calibrator.set_state({"meta": meta, "arrays": arrays})
        return calibrator

    def __repr__(self) -> str:
        return (
            f"AdaptiveConformalCalibrator(horizon={self.horizon}, "
            f"mode={self.config.mode!r}, alpha={self.config.significance}, "
            f"updates={self.updates})"
        )
