"""Model-free baseline predictors for the streaming loop.

The streaming runner only needs an object with a batch ``predict`` returning
a :class:`~repro.core.inference.PredictionResult` — usually a fitted
:class:`~repro.api.Forecaster`, but the throughput benchmark, the dashboard
demo and the unit tests want a predictor whose cost is negligible next to
the runner/ACI/monitor machinery being measured.  :class:`PersistenceForecaster`
is that predictor: it repeats the last observed row across the horizon and
reports a constant predictive scale, which the adaptive conformal layer then
re-widths online.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.core.inference import PredictionResult


class PersistenceForecaster:
    """Repeat-the-last-observation forecaster with a fixed predictive scale.

    Parameters
    ----------
    horizon:
        Number of steps ahead each forecast covers.
    sigma:
        Predictive standard deviation reported for every entry — a scalar or
        a per-node array.  The adaptive conformal calibrator rescales it, so
        its absolute level only sets the starting interval width.
    """

    name = "Persistence"

    def __init__(self, horizon: int, sigma: Union[float, np.ndarray] = 1.0) -> None:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.horizon = int(horizon)
        self.sigma = np.asarray(sigma, dtype=np.float64)
        if np.any(self.sigma <= 0.0):
            raise ValueError("sigma must be positive")
        self.fitted = True

    def predict(self, histories: np.ndarray) -> PredictionResult:
        """Forecast ``(batch, history, nodes)`` windows by persistence."""
        histories = np.asarray(histories, dtype=np.float64)
        if histories.ndim != 3:
            raise ValueError(
                f"expected (batch, history, nodes) windows, got {histories.shape}"
            )
        last = histories[:, -1:, :]                       # (B, 1, N)
        mean = np.repeat(last, self.horizon, axis=1)      # (B, H, N)
        variance = np.broadcast_to(self.sigma ** 2, mean.shape).astype(np.float64).copy()
        return PredictionResult(
            mean=mean,
            aleatoric_var=variance,
            epistemic_var=np.zeros_like(mean),
        )

    def __repr__(self) -> str:
        return f"PersistenceForecaster(horizon={self.horizon})"
