"""O(1) rolling-window online metrics for the streaming loop.

A live forecasting loop needs per-step answers to "how well calibrated are we
*right now*?" without re-scanning history.  :class:`RollingStat` keeps a
fixed-capacity ring buffer plus a running sum, so pushing a value and reading
the rolling mean are both O(1); :class:`StreamingMonitor` composes several of
them into the online analogue of the batch Table IV metrics — coverage, mean
interval width, MAE, RMSE and the Winkler score — over the last ``window``
observed steps.

Partial observations are first-class: every update takes a validity mask
(NaN-masked sensors are simply excluded from that step's statistics), and a
step with no valid entry at all leaves the window untouched.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np


class RollingStat:
    """Ring buffer with an O(1) running mean over the last ``window`` pushes.

    The running sum is re-summed from the ring once per wrap: the pure
    add/subtract update otherwise accumulates float cancellation error
    without bound on long streams (push ``1e12`` then millions of ``1e-4``
    values and the incremental sum ends up dominated by the leftover of the
    subtraction).  One exact O(window) re-sum every ``window`` pushes keeps
    the amortized cost O(1) and the mean within float accuracy forever.
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self._values = np.zeros(self.window, dtype=np.float64)
        self._pos = 0
        self._count = 0
        self._sum = 0.0

    def push(self, value: float) -> None:
        value = float(value)
        if self._count == self.window:
            self._sum -= self._values[self._pos]
        else:
            self._count += 1
        self._values[self._pos] = value
        self._sum += value
        self._pos = (self._pos + 1) % self.window
        if self._pos == 0:
            # The cursor only returns to 0 with a full ring; np.sum's pairwise
            # summation makes this the exact window sum.
            self._sum = float(self._values.sum())

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            return float("nan")
        # float(): the eviction path subtracts an ndarray element, silently
        # promoting _sum to np.float64 — keep the read JSON-native.
        return float(self._sum) / self._count

    def reset(self) -> None:
        self._values[:] = 0.0
        self._pos = 0
        self._count = 0
        self._sum = 0.0

    def get_state(self) -> Dict[str, np.ndarray]:
        """Ring buffer + cursor + running sum as named arrays (bit-exact)."""
        return {
            "values": self._values.copy(),
            "pos": np.array(self._pos, dtype=np.int64),
            "count": np.array(self._count, dtype=np.int64),
            "sum": np.array(self._sum, dtype=np.float64),
        }

    def set_state(self, state: Dict[str, np.ndarray]) -> "RollingStat":
        """Restore a :meth:`get_state` snapshot (bit-identical round trip)."""
        values = np.asarray(state["values"], dtype=np.float64)
        if values.shape != (self.window,):
            raise ValueError(
                f"state holds a window of {values.shape[0]}, stat expects {self.window}"
            )
        self._values = values.copy()
        self._pos = int(state["pos"])
        self._count = int(state["count"])
        self._sum = float(state["sum"])
        return self

    def values(self) -> np.ndarray:
        """The buffered values, oldest first (a copy)."""
        if self._count < self.window:
            return self._values[: self._count].copy()
        return np.concatenate(
            [self._values[self._pos :], self._values[: self._pos]]
        )


class StreamingMonitor:
    """Online coverage / width / error tracking over a rolling step window.

    Each :meth:`update` scores one batch of aligned (target, forecast,
    interval) rows — typically every horizon row that the newest observation
    resolved — and pushes that step's per-entry means into the ring buffers.
    :meth:`snapshot` then reads the rolling metrics in O(1).

    Parameters
    ----------
    window:
        Number of most recent steps the metrics aggregate over.
    significance:
        Interval miscoverage level used by the Winkler score penalty.
    """

    def __init__(self, window: int = 288, significance: float = 0.05) -> None:
        if not 0.0 < significance < 1.0:
            raise ValueError("significance must lie in (0, 1)")
        self.window = int(window)
        self.significance = float(significance)
        self._covered = RollingStat(window)
        self._width = RollingStat(window)
        self._abs_error = RollingStat(window)
        self._sq_error = RollingStat(window)
        self._winkler = RollingStat(window)
        self.steps = 0

    # ------------------------------------------------------------------ #
    def update(
        self,
        target: np.ndarray,
        mean: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> Optional[float]:
        """Score one step's resolved forecasts; returns the step's coverage.

        All arrays must share a shape; ``mask`` marks valid entries (defaults
        to ``isfinite(target)``, so NaN-masked sensors drop out).  Returns the
        fraction of valid entries covered, or ``None`` when nothing was valid.
        """
        target = np.asarray(target, dtype=np.float64)
        mean = np.asarray(mean, dtype=np.float64)
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        if mask is None:
            mask = np.isfinite(target)
        else:
            mask = np.asarray(mask, dtype=bool) & np.isfinite(target)
        self.steps += 1
        if not mask.any():
            return None
        t, m = target[mask], mean[mask]
        lo, up = lower[mask], upper[mask]
        covered = float(np.mean((t >= lo) & (t <= up)))
        width = up - lo
        below = (lo - t) * (t < lo)
        above = (t - up) * (t > up)
        winkler = float(np.mean(width + (2.0 / self.significance) * (below + above)))
        error = t - m
        self._covered.push(covered)
        self._width.push(float(np.mean(width)))
        self._abs_error.push(float(np.mean(np.abs(error))))
        self._sq_error.push(float(np.mean(error ** 2)))
        self._winkler.push(winkler)
        return covered

    # ------------------------------------------------------------------ #
    @property
    def coverage(self) -> float:
        """Rolling-window coverage, in percent (NaN before any update)."""
        return self._covered.mean * 100.0

    @property
    def mean_width(self) -> float:
        return self._width.mean

    def snapshot(self) -> Dict[str, Any]:
        """The rolling metric bundle: online PICP / MPIW / MAE / RMSE / Winkler."""
        mse = self._sq_error.mean
        return {
            "coverage": self.coverage,
            "mean_width": self._width.mean,
            "mae": self._abs_error.mean,
            "rmse": float(np.sqrt(mse)) if np.isfinite(mse) else float("nan"),
            "winkler": self._winkler.mean,
            "window": self.window,
            "scored_steps": self._covered.count,
            "steps": self.steps,
        }

    def reset(self) -> None:
        for stat in self._stats().values():
            stat.reset()
        self.steps = 0

    # ------------------------------------------------------------------ #
    # State protocol (matches the calibrator / UQMethod shape)
    # ------------------------------------------------------------------ #
    def _stats(self) -> Dict[str, RollingStat]:
        return {
            "covered": self._covered,
            "width": self._width,
            "abs_error": self._abs_error,
            "sq_error": self._sq_error,
            "winkler": self._winkler,
        }

    def get_state(self) -> Dict[str, Any]:
        """Full rolling state as ``{"meta": ..., "arrays": ...}``.

        Restoring it through :meth:`set_state` reproduces every rolling
        metric bit-identically, so monitors survive a serving restart
        instead of re-warming from empty windows.
        """
        arrays: Dict[str, np.ndarray] = {}
        for label, stat in self._stats().items():
            for key, value in stat.get_state().items():
                arrays[f"monitor.{label}.{key}"] = value
        return {
            "meta": {
                "kind": "monitor",
                "window": self.window,
                "significance": self.significance,
                "steps": self.steps,
            },
            "arrays": arrays,
        }

    def set_state(self, state: Dict[str, Any]) -> "StreamingMonitor":
        """Restore a :meth:`get_state` snapshot (bit-identical round trip)."""
        meta = state["meta"]
        if meta.get("kind") != "monitor":
            raise ValueError(
                f"state was saved by {meta.get('kind')!r}, not a streaming monitor"
            )
        if int(meta["window"]) != self.window:
            raise ValueError(
                f"state has window {meta['window']}, monitor expects {self.window}"
            )
        self.significance = float(meta["significance"])
        self.steps = int(meta["steps"])
        arrays = state["arrays"]
        for label, stat in self._stats().items():
            stat.set_state(
                {
                    key: arrays[f"monitor.{label}.{key}"]
                    for key in ("values", "pos", "count", "sum")
                }
            )
        return self
