"""Online forecasting: adaptive conformal calibration, drift detection, serving.

The batch pipeline computes its conformal and calibration guarantees once,
on a static validation split; this subsystem keeps them alive on a *stream*:

* :mod:`repro.streaming.aci` — per-horizon adaptive conformal inference
  (Gibbs & Candes ``alpha_t`` updates + rolling nonconformity scores) over
  any UQ method's :class:`~repro.core.inference.PredictionResult`;
* :mod:`repro.streaming.monitor` — O(1) ring-buffer rolling metrics
  (coverage, interval width, MAE/RMSE, Winkler score);
* :mod:`repro.streaming.drift` — coverage-breach and error-CUSUM drift
  detectors emitting typed :class:`~repro.streaming.drift.DriftEvent`\\ s;
* :mod:`repro.streaming.runner` — the :class:`StreamingForecaster` loop
  driving predict → observe → update, with NaN-masked partial observations,
  background refits and zero-drop
  :meth:`~repro.serving.server.InferenceServer.swap_model` publication.

Typical usage::

    stream = forecaster.stream(aci={"gamma": 0.01, "window": 2000})
    for row in feed:                       # rows may contain NaN dropouts
        result = stream.observe(row)
        if result.prediction is not None:
            lower, upper = result.lower, result.upper
    print(stream.monitor.snapshot(), list(stream.event_log))
"""

from repro.streaming.aci import (
    ACI_INTERVAL_MODES,
    ACI_MODES,
    ACIConfig,
    AdaptiveConformalCalibrator,
)
from repro.streaming.baseline import PersistenceForecaster
from repro.streaming.drift import (
    CoverageBreachDetector,
    DriftEvent,
    ErrorCusumDetector,
    EventLog,
)
from repro.streaming.monitor import RollingStat, StreamingMonitor
from repro.streaming.promotion import PROMOTION_MODES, CandidateTrial, PromotionPolicy
from repro.streaming.runner import StepResult, StreamingForecaster
from repro.streaming.shard import ResolvedStep, StreamCore

__all__ = [
    "PROMOTION_MODES",
    "CandidateTrial",
    "PromotionPolicy",
    "ACI_INTERVAL_MODES",
    "ACI_MODES",
    "ACIConfig",
    "AdaptiveConformalCalibrator",
    "PersistenceForecaster",
    "CoverageBreachDetector",
    "ErrorCusumDetector",
    "DriftEvent",
    "EventLog",
    "RollingStat",
    "StreamingMonitor",
    "StepResult",
    "StreamingForecaster",
    "ResolvedStep",
    "StreamCore",
]
