"""Candidate evaluation and promotion policies for the streaming loop.

When drift triggers a refit, blindly publishing the new model is a gamble:
a refit on a short, noisy post-drift window can easily be *worse* than the
incumbent.  :class:`PromotionPolicy` makes the publication step explicit:

``"immediate"``
    The legacy behaviour — the refit replaces the incumbent as soon as it is
    ready (``swap_model`` semantics, zero dropped requests).
``"shadow"``
    The candidate runs silently next to the incumbent: every live window is
    predicted by both, every resolved observation scores both into separate
    rolling monitors, and only the incumbent's forecasts are emitted.  After
    ``eval_steps`` scored steps the candidate is promoted iff its rolling
    MAE/coverage beat the incumbent's; otherwise it is discarded.
``"canary"``
    Like shadow, but the candidate also *serves* a ``canary_fraction`` share
    of the emitted forecasts (and, when the attached server supports
    deployments, a matching share of external traffic) during the trial —
    real exposure, bounded blast radius.

:class:`CandidateTrial` is the live A/B state: the candidate's pending
forecasts, the two same-window rolling monitors, the canary admission
counter, and the promote/reject verdict.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.streaming.monitor import StreamingMonitor

#: Recognized promotion modes.
PROMOTION_MODES = ("immediate", "shadow", "canary")


@dataclass
class PromotionPolicy:
    """How drift-triggered refits are evaluated before publication.

    Parameters
    ----------
    mode:
        One of :data:`PROMOTION_MODES`.
    eval_steps:
        Scored stream steps (observations that resolved forecasts of both
        models) before the promote/reject verdict.
    canary_fraction:
        Share of emitted forecasts (and routed external traffic) the
        candidate serves during a ``"canary"`` trial.
    mae_tolerance:
        The candidate is promoted only if its rolling MAE is at most
        ``incumbent_mae * (1 + mae_tolerance)``; ``0.0`` requires it to be
        no worse, negative values demand a strict improvement margin.
    coverage_tolerance:
        Allowed extra distance (in coverage fraction) between the
        candidate's rolling coverage and the nominal level, relative to the
        incumbent's distance.
    metric_window:
        Rolling-window length (in scored steps) of the trial monitors.
    """

    mode: str = "immediate"
    eval_steps: int = 50
    canary_fraction: float = 0.25
    mae_tolerance: float = 0.0
    coverage_tolerance: float = 0.02
    metric_window: int = 200

    def __post_init__(self) -> None:
        if self.mode not in PROMOTION_MODES:
            raise ValueError(f"mode must be one of {PROMOTION_MODES}, got {self.mode!r}")
        if self.eval_steps < 1:
            raise ValueError("eval_steps must be >= 1")
        if not 0.0 < self.canary_fraction <= 1.0:
            raise ValueError("canary_fraction must lie in (0, 1]")
        if self.coverage_tolerance < 0.0:
            raise ValueError("coverage_tolerance must be non-negative")
        if self.metric_window < 1:
            raise ValueError("metric_window must be >= 1")


class CandidateTrial:
    """Live evaluation state of one refitted candidate on the stream.

    The trial scores candidate and incumbent over the *same* resolved
    observations: the runner feeds every incumbent resolution into
    :meth:`observe_incumbent` and every new observation into
    :meth:`resolve`, which settles the candidate's own pending forecasts.
    Scoring starts only once both sides have forecasts made *after* the
    trial began, so neither model is judged on pre-trial predictions.
    """

    def __init__(
        self,
        model: Any,
        predict: Callable,
        policy: PromotionPolicy,
        start_step: int,
        horizon: int,
        nominal: float,
        name: str,
        version: str,
    ) -> None:
        self.model = model
        self.predict = predict
        self.policy = policy
        self.start_step = int(start_step)
        self.horizon = int(horizon)
        self.nominal = float(nominal)
        self.name = str(name)
        self.version = str(version)
        significance = 1.0 - self.nominal
        self.candidate_monitor = StreamingMonitor(
            window=policy.metric_window, significance=significance
        )
        self.incumbent_monitor = StreamingMonitor(
            window=policy.metric_window, significance=significance
        )
        self._pending: deque = deque(maxlen=self.horizon)
        self._lock = threading.Lock()
        self._candidate_scored = 0
        self._incumbent_scored = 0
        self._canary_total = 0
        self._canary_served = 0
        self.deployed = False          # registered on the server's pool
        self.previous_router = None    # router to restore when the trial ends

    # ------------------------------------------------------------------ #
    # Canary admission
    # ------------------------------------------------------------------ #
    def serve_candidate_now(self) -> bool:
        """Deficit-counter admission: candidate serves its canary share."""
        if self.policy.mode != "canary":
            return False
        with self._lock:
            self._canary_total += 1
            if self._canary_served < self.policy.canary_fraction * self._canary_total:
                self._canary_served += 1
                return True
            return False

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def record(
        self,
        step: int,
        mean: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> None:
        """Remember one candidate forecast ``(horizon, nodes)`` for scoring."""
        with self._lock:
            self._pending.append(
                {"step": int(step), "mean": mean, "lower": lower, "upper": upper}
            )

    def resolve(self, step: int, observation: np.ndarray, valid: np.ndarray) -> None:
        """Score every pending candidate forecast this observation completes."""
        masked = np.where(valid, observation, np.nan)
        targets, means, lowers, uppers = [], [], [], []
        with self._lock:
            for entry in self._pending:
                h = step - entry["step"] - 1
                # Pre-start entries are skipped on both sides so candidate and
                # incumbent are always compared over identical forecast sets.
                if not 0 <= h < self.horizon or entry["step"] < self.start_step:
                    continue
                targets.append(masked)
                means.append(entry["mean"][h])
                lowers.append(entry["lower"][h])
                uppers.append(entry["upper"][h])
        if targets:
            scored = self.candidate_monitor.update(
                np.stack(targets), np.stack(means), np.stack(lowers), np.stack(uppers)
            )
            if scored is not None:
                with self._lock:
                    self._candidate_scored += 1

    def observe_incumbent(
        self,
        target: np.ndarray,
        mean: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        forecast_steps: np.ndarray,
    ) -> None:
        """Score the incumbent's resolutions made from post-trial forecasts."""
        keep = np.asarray(forecast_steps) >= self.start_step
        if not keep.any():
            return
        scored = self.incumbent_monitor.update(
            np.asarray(target)[keep],
            np.asarray(mean)[keep],
            np.asarray(lower)[keep],
            np.asarray(upper)[keep],
        )
        if scored is not None:
            with self._lock:
                self._incumbent_scored += 1

    # ------------------------------------------------------------------ #
    # Verdict
    # ------------------------------------------------------------------ #
    @property
    def scored_steps(self) -> int:
        """Scored steps both sides have accumulated.

        Counted on the trial itself, not via the monitors' ring counts —
        those cap at ``metric_window``, which would stall any trial with
        ``eval_steps > metric_window`` forever.
        """
        with self._lock:
            return min(self._candidate_scored, self._incumbent_scored)

    def verdict(self) -> Optional[Dict[str, Any]]:
        """Promote/reject decision, or ``None`` while the trial is still running.

        The candidate must beat the incumbent on rolling MAE (within
        ``mae_tolerance``) *and* sit no further from nominal coverage than
        the incumbent plus ``coverage_tolerance``.
        """
        if self.scored_steps < self.policy.eval_steps:
            return None
        candidate = self.candidate_monitor.snapshot()
        incumbent = self.incumbent_monitor.snapshot()
        cand_mae, inc_mae = candidate["mae"], incumbent["mae"]
        cand_gap = abs(candidate["coverage"] / 100.0 - self.nominal)
        inc_gap = abs(incumbent["coverage"] / 100.0 - self.nominal)
        mae_ok = np.isfinite(cand_mae) and (
            cand_mae <= inc_mae * (1.0 + self.policy.mae_tolerance)
        )
        coverage_ok = cand_gap <= inc_gap + self.policy.coverage_tolerance
        return {
            "promote": bool(mae_ok and coverage_ok),
            "candidate_mae": float(cand_mae),
            "incumbent_mae": float(inc_mae),
            "candidate_coverage": float(candidate["coverage"]),
            "incumbent_coverage": float(incumbent["coverage"]),
            "scored_steps": int(self.scored_steps),
        }

    def __repr__(self) -> str:
        return (
            f"CandidateTrial({self.name!r}, mode={self.policy.mode!r}, "
            f"scored={self.scored_steps}/{self.policy.eval_steps})"
        )
