"""The per-stream predict → observe → update core, extracted from the runner.

:class:`StreamCore` is the model-free state machine one live stream needs:
the rolling history window, the pending-forecast ledger, the per-horizon
:class:`~repro.streaming.aci.AdaptiveConformalCalibrator`, the rolling
:class:`~repro.streaming.monitor.StreamingMonitor`, the drift detectors and
the event log.  What it deliberately does *not* own is the model call — the
caller fetches :meth:`window`, obtains a
:class:`~repro.core.inference.PredictionResult` however it likes (a direct
``predict``, or a shared batched
:class:`~repro.serving.InferenceServer`), and hands it back through
:meth:`record`.

That split is what lets one process scale from one stream to a fleet:

* :class:`~repro.streaming.runner.StreamingForecaster` wires a single core to
  a single forecaster — the classic one-stream loop, unchanged semantics;
* :class:`~repro.fleet.StreamFleet` owns one core per corridor and funnels
  *all* per-tick windows through one shared micro-batched server, so a tick
  over N streams costs ``O(ceil(N / batch))`` model calls instead of N.

The **full** online state round-trips bit-identically through
:meth:`get_state` / :meth:`set_state` (the shared array-protocol shape used
across the repo), which is what fleet checkpoints shard per stream: the
calibration buffers, the rolling monitor windows, the event log, the drift
detectors (coverage-breach ring and debounce counters, error-CUSUM statistic
and frozen Welford baseline), the history window, the pending-forecast
ledger, the retained refit observations and the carry-forward imputation
state.  A core killed mid-drift and restored therefore continues the stream
exactly where it stopped — same forecasts, same resolutions, same detector
firings at the same steps as an uninterrupted run (format version 2; version
1 checkpoints, which omitted detectors and ledgers, are still readable and
simply resume with fresh detectors and a cold window).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.inference import PredictionResult
from repro.obs.profiler import phase as obs_phase
from repro.streaming.aci import ACIConfig, AdaptiveConformalCalibrator
from repro.streaming.drift import (
    CoverageBreachDetector,
    DriftEvent,
    ErrorCusumDetector,
    EventLog,
)
from repro.streaming.monitor import StreamingMonitor

#: On-disk format revision of :meth:`StreamCore.get_state`.  Version 2 added
#: the drift-detector state and the history / pending / recent ledgers;
#: version 1 checkpoints are still readable (detectors and ledgers restore
#: empty, the pre-fix behaviour).
STREAM_CORE_FORMAT_VERSION = 2

#: Fields every pending-ledger entry serializes as ``pending.<i>.<field>``.
_PENDING_FIELDS = ("mean", "scale", "lower", "upper")
_PENDING_NATIVE_FIELDS = ("native_lower", "native_upper")


@dataclass
class ResolvedStep:
    """Everything one ingested observation resolved on a stream core."""

    observed: np.ndarray                     # raw observation row (1-D)
    filled: np.ndarray                       # gap-filled row appended to history
    valid: np.ndarray                        # which sensors were actually observed
    covered: Optional[float]                 # step coverage over resolved rows
    abs_error: Optional[float]               # step MAE over resolved rows
    events: List[DriftEvent] = field(default_factory=list)
    # Aligned stacks of the resolved forecasts (None when nothing resolved):
    target: Optional[np.ndarray] = None      # (rows, nodes) NaN-masked targets
    mean: Optional[np.ndarray] = None
    lower: Optional[np.ndarray] = None
    upper: Optional[np.ndarray] = None
    steps: Optional[np.ndarray] = None       # step each resolved forecast was made at


class StreamCore:
    """Model-free online state of one stream.

    Parameters mirror the per-stream subset of
    :class:`~repro.streaming.runner.StreamingForecaster`:

    history, horizon:
        Window geometry.
    calibrator / aci:
        An :class:`AdaptiveConformalCalibrator`, or keyword overrides for a
        default one's :class:`ACIConfig`.
    monitor:
        A :class:`StreamingMonitor` (default: rolling day at the calibrator's
        significance).
    detectors:
        Drift detectors consuming the per-step coverage / abs-error signals;
        defaults to a coverage-breach plus an error-CUSUM detector.
    refit_window:
        How many recent gap-filled observations :meth:`recent` retains.
    """

    def __init__(
        self,
        history: int,
        horizon: int,
        calibrator: Optional[AdaptiveConformalCalibrator] = None,
        aci: Optional[Dict[str, Any]] = None,
        monitor: Optional[StreamingMonitor] = None,
        detectors: Optional[Sequence[Any]] = None,
        refit_window: int = 288,
    ) -> None:
        if history < 1 or horizon < 1:
            raise ValueError("history and horizon must be >= 1")
        self.history = int(history)
        self.horizon = int(horizon)
        if calibrator is not None:
            if calibrator.horizon != self.horizon:
                raise ValueError(
                    f"calibrator horizon {calibrator.horizon} does not match "
                    f"stream horizon {self.horizon}"
                )
            self.calibrator = calibrator
        else:
            self.calibrator = AdaptiveConformalCalibrator(
                self.horizon, config=ACIConfig(**(aci or {}))
            )
        significance = self.calibrator.config.significance
        self.monitor = (
            monitor if monitor is not None else StreamingMonitor(significance=significance)
        )
        self.detectors = (
            list(detectors)
            if detectors is not None
            else [
                CoverageBreachDetector(nominal=1.0 - significance),
                ErrorCusumDetector(),
            ]
        )
        self.event_log = EventLog()
        self.refit_window = int(refit_window)
        self._lock = threading.Lock()
        self._history: deque = deque(maxlen=self.history)
        self._pending: deque = deque(maxlen=self.horizon)
        self._recent: deque = deque(maxlen=self.refit_window)
        self._last_filled: Optional[np.ndarray] = None
        self._step = 0

    # ------------------------------------------------------------------ #
    @property
    def step(self) -> int:
        """Number of observations ingested so far."""
        return self._step

    @property
    def warmed_up(self) -> bool:
        return len(self._history) == self.history

    @staticmethod
    def normalize(
        observation: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flatten one observation row and derive its validity mask."""
        obs = np.asarray(observation, dtype=np.float64).reshape(-1)
        valid = np.isfinite(obs)
        if mask is not None:
            valid &= np.asarray(mask, dtype=bool).reshape(-1)
        return obs, valid

    # ------------------------------------------------------------------ #
    # Observation side
    # ------------------------------------------------------------------ #
    def resolve(self, s: int, obs: np.ndarray, valid: np.ndarray) -> ResolvedStep:
        """Score every pending forecast that observation ``s`` completes.

        Each resolved horizon row feeds the per-horizon calibrator (scores
        plus realized miscoverage) and, stacked, the rolling monitor.  The
        aligned stacks come back on the :class:`ResolvedStep` so callers can
        feed side-by-side evaluations (candidate trials) the exact same rows.
        """
        targets, means, lowers, uppers, steps = [], [], [], [], []
        masked = np.where(valid, obs, np.nan)
        with obs_phase("aci_update"), self._lock:
            for entry in self._pending:
                h = s - entry["step"] - 1
                if not 0 <= h < self.horizon:
                    continue
                mu, scale = entry["mean"][h], entry["scale"][h]
                lo, up = entry["lower"][h], entry["upper"][h]
                targets.append(masked)
                means.append(mu)
                lowers.append(lo)
                uppers.append(up)
                steps.append(entry["step"])
                if valid.any():
                    nat_lo, nat_up = entry["native_lower"], entry["native_upper"]
                    scores = self.calibrator.score(
                        obs[valid],
                        mu[valid],
                        scale[valid],
                        lower=nat_lo[h][valid] if nat_lo is not None else None,
                        upper=nat_up[h][valid] if nat_up is not None else None,
                    )
                    miss = float(((obs[valid] < lo[valid]) | (obs[valid] > up[valid])).mean())
                else:
                    scores, miss = np.empty(0), None
                self.calibrator.update(h, scores, miscoverage=miss)
        resolved = ResolvedStep(
            observed=obs, filled=obs, valid=valid, covered=None, abs_error=None
        )
        if not targets:
            return resolved
        target = np.stack(targets)
        mean = np.stack(means)
        resolved.target = target
        resolved.mean = mean
        resolved.lower = np.stack(lowers)
        resolved.upper = np.stack(uppers)
        resolved.steps = np.asarray(steps)
        with obs_phase("monitor_update"):
            resolved.covered = self.monitor.update(
                target, mean, resolved.lower, resolved.upper
            )
        finite = np.isfinite(target)
        if finite.any():
            resolved.abs_error = float(np.mean(np.abs(target[finite] - mean[finite])))
        return resolved

    def detect(
        self, s: int, covered: Optional[float], abs_error: Optional[float]
    ) -> List[DriftEvent]:
        """Route one step's signals through the detectors; log any firings."""
        signals = {"coverage": covered, "abs_error": abs_error}
        events: List[DriftEvent] = []
        with obs_phase("drift_detect"):
            for detector in self.detectors:
                event = detector.update(s, signals.get(getattr(detector, "signal", "coverage")))
                if event is not None:
                    events.append(self.event_log.append(event))
        return events

    def append(self, obs: np.ndarray, valid: np.ndarray) -> np.ndarray:
        """Ingest the row into the history window (carry-forward imputation)."""
        if self._last_filled is None:
            filled = np.where(valid, obs, 0.0)
        else:
            filled = np.where(valid, obs, self._last_filled)
        self._last_filled = filled
        self._history.append(filled)
        self._recent.append(filled)
        return filled

    def ingest(
        self, observation: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> ResolvedStep:
        """Resolve + detect + append for one observation row (one call).

        Convenience composition for driving a bare core directly (scripts,
        custom loops); the runner and the fleet call the pieces individually
        so they can interleave candidate-trial scoring between them.  Does
        **not** advance the step counter — call :meth:`advance` once the
        step's forecast has been recorded.
        """
        obs, valid = self.normalize(observation, mask)
        s = self._step
        resolved = self.resolve(s, obs, valid)
        resolved.events.extend(self.detect(s, resolved.covered, resolved.abs_error))
        resolved.filled = self.append(obs, valid)
        return resolved

    def advance(self) -> int:
        """Close the step; returns the index of the step just completed."""
        s = self._step
        self._step += 1
        return s

    # ------------------------------------------------------------------ #
    # Forecast side
    # ------------------------------------------------------------------ #
    def window(self) -> Optional[np.ndarray]:
        """The current ``(1, history, nodes)`` model input, or ``None`` cold."""
        if not self.warmed_up:
            return None
        return np.stack(self._history, axis=0)[None]

    def calibrate(
        self, raw: PredictionResult
    ) -> Tuple[PredictionResult, np.ndarray, np.ndarray]:
        """Width-adapt a raw result without recording it (candidate scoring)."""
        with self._lock:
            lower_b, upper_b = self.calibrator.intervals(raw)
            calibrated = self.calibrator.fold(raw, lower_b, upper_b)
        return calibrated, lower_b, upper_b

    def record(
        self, raw: PredictionResult
    ) -> Tuple[PredictionResult, np.ndarray, np.ndarray]:
        """Calibrate the step's forecast and append it to the pending ledger.

        Returns ``(calibrated, lower, upper)`` with the bounds squeezed to
        ``(horizon, nodes)``.  The ledger entry keeps whatever the resolver
        will need later: the raw mean, the local scale, the emitted bounds
        and — for native-bound methods — the method's own asymmetric bounds.
        """
        with obs_phase("unscale"), self._lock:
            lower_b, upper_b = self.calibrator.intervals(raw)
            calibrated = self.calibrator.fold(raw, lower_b, upper_b)
            scale = self.calibrator._scale(raw)
            if self.calibrator.uses_native():
                # Effective reference bounds (the method's own, or Gaussian
                # ones synthesized for a bound-less model on a native-latched
                # stream) — what the CQR scores resolve against later.
                native_lower, native_upper = self.calibrator.native_reference(raw)
                native_lower, native_upper = native_lower[0], native_upper[0]
            else:
                native_lower = raw.lower[0] if raw.lower is not None else None
                native_upper = raw.upper[0] if raw.upper is not None else None
            self._pending.append(
                {
                    "step": self._step,
                    "mean": raw.mean[0],
                    "scale": scale[0],
                    "lower": lower_b[0],
                    "upper": upper_b[0],
                    "native_lower": native_lower,
                    "native_upper": native_upper,
                }
            )
        return calibrated, lower_b[0], upper_b[0]

    # ------------------------------------------------------------------ #
    # Recalibration support
    # ------------------------------------------------------------------ #
    def recent(self) -> Optional[np.ndarray]:
        """The retained ``(steps, nodes)`` recent observations (refit input)."""
        return np.stack(self._recent, axis=0) if self._recent else None

    def reset_scores(self, keep_alpha: bool = True) -> None:
        """Rebuild the nonconformity buffers (post-drift recalibration)."""
        with self._lock:
            self.calibrator.reset_scores(keep_alpha=keep_alpha)

    # ------------------------------------------------------------------ #
    # State protocol (sharded per stream by fleet checkpoints)
    # ------------------------------------------------------------------ #
    def get_state(self) -> Dict[str, Any]:
        """The full online state as ``{"meta", "arrays"}``.

        Restoring through :meth:`set_state` is bit-identical for every
        calibration buffer, rolling metric window, logged event, drift
        detector and ledger row: the history window, the pending-forecast
        ledger and the retained refit observations are checkpointed too, so
        a restored core resumes mid-stream instead of re-warming — the
        invariant the chaos suite's kill-and-restore scenarios assert.
        """
        with self._lock:
            aci_state = self.calibrator.get_state()
            monitor_state = self.monitor.get_state()
            arrays = dict(aci_state["arrays"])
            arrays.update(monitor_state["arrays"])
            detector_metas: List[Optional[Dict[str, Any]]] = []
            for index, detector in enumerate(self.detectors):
                getter = getattr(detector, "get_state", None)
                if not callable(getter):
                    # Custom detectors may not speak the protocol; record the
                    # gap so restore knows the slot intentionally holds none.
                    detector_metas.append(None)
                    continue
                det_state = getter()
                detector_metas.append(det_state["meta"])
                for key, value in det_state["arrays"].items():
                    arrays[f"detector.{index}.{key}"] = value
            pending_meta: List[Dict[str, Any]] = []
            for index, entry in enumerate(self._pending):
                pending_meta.append(
                    {
                        "step": int(entry["step"]),
                        "native": entry["native_lower"] is not None,
                    }
                )
                for field_name in _PENDING_FIELDS:
                    arrays[f"pending.{index}.{field_name}"] = np.asarray(
                        entry[field_name], dtype=np.float64
                    )
                if entry["native_lower"] is not None:
                    for field_name in _PENDING_NATIVE_FIELDS:
                        arrays[f"pending.{index}.{field_name}"] = np.asarray(
                            entry[field_name], dtype=np.float64
                        )
            arrays["core.history"] = (
                np.stack(self._history, axis=0)
                if self._history
                else np.zeros((0, 0), dtype=np.float64)
            )
            arrays["core.recent"] = (
                np.stack(self._recent, axis=0)
                if self._recent
                else np.zeros((0, 0), dtype=np.float64)
            )
            if self._last_filled is not None:
                arrays["core.last_filled"] = np.asarray(
                    self._last_filled, dtype=np.float64
                )
            meta = {
                "kind": "stream_core",
                "format_version": STREAM_CORE_FORMAT_VERSION,
                "history": self.history,
                "horizon": self.horizon,
                "refit_window": self.refit_window,
                "step": self._step,
                "aci": aci_state["meta"],
                "monitor": monitor_state["meta"],
                "detectors": detector_metas,
                "pending": pending_meta,
                "events": self.event_log.to_records(),
            }
        return {"meta": meta, "arrays": arrays}

    def set_state(self, state: Dict[str, Any]) -> "StreamCore":
        """Restore a :meth:`get_state` snapshot (bit-identical round trip).

        Version-1 snapshots (pre detector/ledger checkpointing) restore what
        they carry — calibration, monitor, events, step — and leave the
        detectors and ledgers as freshly constructed.
        """
        meta = state["meta"]
        if meta.get("kind") != "stream_core":
            raise ValueError(
                f"state was saved by {meta.get('kind')!r}, not a stream core"
            )
        version = meta.get("format_version")
        if version not in (1, STREAM_CORE_FORMAT_VERSION):
            raise ValueError(
                f"unsupported stream-core state format {version!r} "
                f"(this build reads versions 1-{STREAM_CORE_FORMAT_VERSION})"
            )
        arrays = state["arrays"]
        with self._lock:
            refit_window = int(meta.get("refit_window", self.refit_window))
            if refit_window != self.refit_window:
                self.refit_window = refit_window
                self._recent = deque(self._recent, maxlen=refit_window)
            self.calibrator.set_state({"meta": meta["aci"], "arrays": arrays})
            monitor_meta = meta["monitor"]
            if self.monitor.window != int(monitor_meta["window"]):
                self.monitor = StreamingMonitor(
                    window=int(monitor_meta["window"]),
                    significance=float(monitor_meta["significance"]),
                )
            self.monitor.set_state({"meta": monitor_meta, "arrays": arrays})
            self.event_log = EventLog.from_records(meta["events"])
            self._step = int(meta["step"])
            if version >= 2:
                self._restore_detectors(meta["detectors"], arrays)
                self._restore_ledgers(meta["pending"], arrays)
        return self

    def _restore_detectors(
        self, metas: List[Optional[Dict[str, Any]]], arrays: Dict[str, Any]
    ) -> None:
        """Restore detector state into matching live detectors (by slot + kind).

        Behaviour lives in code, state in the checkpoint (the fleet-load
        philosophy): a slot whose stored kind no longer matches the
        constructed detector — or that stored no state at all — keeps the
        fresh detector rather than failing the whole restore.
        """
        for index, (detector, det_meta) in enumerate(zip(self.detectors, metas)):
            if det_meta is None:
                continue
            setter = getattr(detector, "set_state", None)
            if not callable(setter) or det_meta.get("kind") != getattr(
                detector, "kind", None
            ):
                continue
            prefix = f"detector.{index}."
            det_arrays = {
                key[len(prefix):]: value
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            setter({"meta": det_meta, "arrays": det_arrays})

    def _restore_ledgers(
        self, pending_meta: List[Dict[str, Any]], arrays: Dict[str, Any]
    ) -> None:
        """Rebuild the history / pending / recent deques from a v2 snapshot."""
        history = np.asarray(arrays["core.history"], dtype=np.float64)
        self._history = deque(
            (row.copy() for row in history), maxlen=self.history
        )
        recent = np.asarray(arrays["core.recent"], dtype=np.float64)
        self._recent = deque(
            (row.copy() for row in recent), maxlen=self.refit_window
        )
        last_filled = arrays.get("core.last_filled")
        self._last_filled = (
            np.asarray(last_filled, dtype=np.float64).copy()
            if last_filled is not None
            else None
        )
        self._pending = deque(maxlen=self.horizon)
        for index, entry_meta in enumerate(pending_meta):
            entry: Dict[str, Any] = {"step": int(entry_meta["step"])}
            for field_name in _PENDING_FIELDS:
                entry[field_name] = np.asarray(
                    arrays[f"pending.{index}.{field_name}"], dtype=np.float64
                ).copy()
            for field_name in _PENDING_NATIVE_FIELDS:
                entry[field_name] = (
                    np.asarray(
                        arrays[f"pending.{index}.{field_name}"], dtype=np.float64
                    ).copy()
                    if entry_meta["native"]
                    else None
                )
            self._pending.append(entry)

    def __repr__(self) -> str:
        return (
            f"StreamCore(history={self.history}, horizon={self.horizon}, "
            f"step={self._step}, mode={self.calibrator.config.mode!r}, "
            f"events={len(self.event_log)})"
        )
