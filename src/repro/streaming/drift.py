"""Drift detection over the streaming metric signals.

Two complementary detectors watch the online loop:

* :class:`CoverageBreachDetector` — a *calibration* alarm: when the rolling
  empirical coverage stays below the nominal level minus a tolerance for
  ``patience`` consecutive scored steps, the conformal state no longer
  matches the stream.
* :class:`ErrorCusumDetector` — an *accuracy* alarm: a one-sided CUSUM on
  standardized absolute errors (baseline mean/std estimated online during a
  warm-up phase, Welford's algorithm, then frozen) accumulates evidence of a
  sustained error-level increase and fires when the statistic crosses the
  decision threshold.

Both emit typed :class:`DriftEvent` records and re-arm after a firing, so a
long-lived stream produces a clean, timestamped event log rather than a
boolean flag.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.obs.events import log_event
from repro.streaming.monitor import RollingStat

#: Event kinds that signal genuine stream drift (as opposed to lifecycle
#: notifications) — what fleet-level coordination and spatial aggregation
#: listen for.  Detectors added later should register their kind here so
#: every drift consumer picks them up.
DRIFT_KINDS = ("coverage_breach", "error_cusum")


@dataclass(frozen=True)
class DriftEvent:
    """One detector firing (or lifecycle notification) on the stream."""

    kind: str          # "coverage_breach" | "error_cusum" | runner lifecycle kinds
    step: int          # stream step index at which the event fired
    value: float       # the statistic that crossed the threshold
    threshold: float   # the decision threshold it crossed
    message: str = ""

    def __str__(self) -> str:
        text = f"[step {self.step}] {self.kind}: value={self.value:.4g} threshold={self.threshold:.4g}"
        return f"{text} — {self.message}" if self.message else text

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (float fields stay Python floats)."""
        record = asdict(self)
        record["step"] = int(record["step"])
        record["value"] = float(record["value"])
        record["threshold"] = float(record["threshold"])
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "DriftEvent":
        return cls(
            kind=str(record["kind"]),
            step=int(record["step"]),
            value=float(record["value"]),
            threshold=float(record["threshold"]),
            message=str(record.get("message", "")),
        )


class CoverageBreachDetector:
    """Fires when rolling coverage stays below ``nominal - tolerance``.

    Parameters
    ----------
    nominal:
        Target coverage as a fraction (0.95 for 95% intervals).
    tolerance:
        Allowed slack below nominal before a step counts as breached.
    window:
        Rolling window (in scored steps) the coverage is estimated over.
    patience:
        Consecutive breached steps required before the event fires —
        a debounce so single noisy steps cannot trigger recalibration.
    warmup:
        Scored steps to observe before breaches start counting.
    """

    kind = "coverage_breach"
    signal = "coverage"

    def __init__(
        self,
        nominal: float = 0.95,
        tolerance: float = 0.05,
        window: int = 100,
        patience: int = 20,
        warmup: int = 50,
    ) -> None:
        if not 0.0 < nominal < 1.0:
            raise ValueError("nominal must lie in (0, 1)")
        if tolerance <= 0.0 or patience < 1:
            raise ValueError("tolerance must be positive and patience >= 1")
        self.nominal = float(nominal)
        self.tolerance = float(tolerance)
        self.patience = int(patience)
        self.warmup = int(warmup)
        self._coverage = RollingStat(window)
        self._scored = 0
        self._breached_steps = 0

    @property
    def rolling_coverage(self) -> float:
        return self._coverage.mean

    def update(self, step: int, covered_fraction: Optional[float]) -> Optional[DriftEvent]:
        """Fold one step's covered fraction in; returns an event if it fires."""
        if covered_fraction is None:
            return None
        self._coverage.push(float(covered_fraction))
        # Warm up on total scored steps, not the ring count: the ring caps at
        # ``window``, so a warmup longer than the window would otherwise
        # disarm the detector forever.
        self._scored += 1
        if self._scored < max(self.warmup, 1):
            return None
        coverage = self._coverage.mean
        threshold = self.nominal - self.tolerance
        if coverage < threshold:
            self._breached_steps += 1
        else:
            self._breached_steps = 0
        if self._breached_steps >= self.patience:
            self._breached_steps = 0
            return DriftEvent(
                kind=self.kind,
                step=int(step),
                value=coverage,
                threshold=threshold,
                message=(
                    f"rolling coverage {coverage * 100.0:.1f}% stayed below "
                    f"{threshold * 100.0:.1f}% for {self.patience} steps"
                ),
            )
        return None

    def reset(self) -> None:
        self._coverage.reset()
        self._scored = 0
        self._breached_steps = 0

    # ------------------------------------------------------------------ #
    # State protocol (folded into StreamCore checkpoints)
    # ------------------------------------------------------------------ #
    def get_state(self) -> Dict[str, Any]:
        """Rolling-coverage ring + breach counters as ``{"meta", "arrays"}``.

        A detector mid-way through its ``patience`` debounce carries real
        evidence of an unfolding breach; checkpointing it (rather than
        re-arming from zero) is what lets a kill-and-restore mid-drift fire
        the same event at the same step as an uninterrupted run.
        """
        return {
            "meta": {
                "kind": self.kind,
                "nominal": self.nominal,
                "tolerance": self.tolerance,
                "window": self._coverage.window,
                "patience": self.patience,
                "warmup": self.warmup,
                "scored": self._scored,
                "breached_steps": self._breached_steps,
            },
            "arrays": {
                f"coverage.{key}": value
                for key, value in self._coverage.get_state().items()
            },
        }

    def set_state(self, state: Dict[str, Any]) -> "CoverageBreachDetector":
        """Restore a :meth:`get_state` snapshot (bit-identical round trip)."""
        meta = state["meta"]
        if meta.get("kind") != self.kind:
            raise ValueError(
                f"state was saved by {meta.get('kind')!r}, not a {self.kind} detector"
            )
        self.nominal = float(meta["nominal"])
        self.tolerance = float(meta["tolerance"])
        self.patience = int(meta["patience"])
        self.warmup = int(meta["warmup"])
        if self._coverage.window != int(meta["window"]):
            self._coverage = RollingStat(int(meta["window"]))
        self._coverage.set_state(
            {
                key: state["arrays"][f"coverage.{key}"]
                for key in ("values", "pos", "count", "sum")
            }
        )
        self._scored = int(meta["scored"])
        self._breached_steps = int(meta["breached_steps"])
        return self


class ErrorCusumDetector:
    """One-sided CUSUM on standardized absolute forecast errors.

    During the first ``warmup`` updates the detector estimates the baseline
    error mean and standard deviation with Welford's online algorithm; the
    baseline is then frozen and each subsequent step contributes
    ``z_t = (err_t - mean) / std`` to the statistic
    ``S_t = max(0, S_{t-1} + z_t - slack)``.  Crossing ``threshold`` fires a
    :class:`DriftEvent` and resets ``S`` (the baseline stays frozen, so a
    persistent shift keeps re-firing until the model is recalibrated).
    """

    kind = "error_cusum"
    signal = "abs_error"

    def __init__(self, slack: float = 0.5, threshold: float = 8.0, warmup: int = 100) -> None:
        if threshold <= 0.0 or warmup < 2:
            raise ValueError("threshold must be positive and warmup >= 2")
        self.slack = float(slack)
        self.threshold = float(threshold)
        self.warmup = int(warmup)
        self.statistic = 0.0
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    @property
    def baseline(self) -> tuple:
        """Estimated ``(mean, std)`` of the warm-up error level."""
        if self._n < 2:
            return (float("nan"), float("nan"))
        return (self._mean, float(np.sqrt(self._m2 / (self._n - 1))))

    def update(self, step: int, abs_error: Optional[float]) -> Optional[DriftEvent]:
        """Fold one step's mean absolute error in; returns an event if it fires."""
        if abs_error is None or not np.isfinite(abs_error):
            return None
        error = float(abs_error)
        if self._n < self.warmup:
            # Welford baseline estimation.
            self._n += 1
            delta = error - self._mean
            self._mean += delta / self._n
            self._m2 += delta * (error - self._mean)
            return None
        _, std = self.baseline
        if not np.isfinite(std) or std <= 1e-12:
            std = max(abs(self._mean), 1e-12)
        z = (error - self._mean) / std
        self.statistic = max(0.0, self.statistic + z - self.slack)
        if self.statistic > self.threshold:
            value = self.statistic
            self.statistic = 0.0
            return DriftEvent(
                kind=self.kind,
                step=int(step),
                value=value,
                threshold=self.threshold,
                message=(
                    f"error CUSUM {value:.2f} crossed {self.threshold:.2f} "
                    f"(baseline MAE {self._mean:.3f} ± {std:.3f})"
                ),
            )
        return None

    def reset(self, keep_baseline: bool = True) -> None:
        self.statistic = 0.0
        if not keep_baseline:
            self._n = 0
            self._mean = 0.0
            self._m2 = 0.0

    # ------------------------------------------------------------------ #
    # State protocol (folded into StreamCore checkpoints)
    # ------------------------------------------------------------------ #
    def get_state(self) -> Dict[str, Any]:
        """CUSUM statistic + frozen Welford baseline as ``{"meta", "arrays"}``.

        The statistic is the accumulated evidence of an error-level shift;
        dropping it on restore (the pre-fix behaviour) silently discards
        however many standardized excess-error units the stream had already
        banked toward the decision threshold.
        """
        return {
            "meta": {
                "kind": self.kind,
                "slack": self.slack,
                "threshold": self.threshold,
                "warmup": self.warmup,
            },
            "arrays": {
                "statistic": np.array(self.statistic, dtype=np.float64),
                "n": np.array(self._n, dtype=np.int64),
                "mean": np.array(self._mean, dtype=np.float64),
                "m2": np.array(self._m2, dtype=np.float64),
            },
        }

    def set_state(self, state: Dict[str, Any]) -> "ErrorCusumDetector":
        """Restore a :meth:`get_state` snapshot (bit-identical round trip)."""
        meta = state["meta"]
        if meta.get("kind") != self.kind:
            raise ValueError(
                f"state was saved by {meta.get('kind')!r}, not a {self.kind} detector"
            )
        self.slack = float(meta["slack"])
        self.threshold = float(meta["threshold"])
        self.warmup = int(meta["warmup"])
        arrays = state["arrays"]
        self.statistic = float(arrays["statistic"])
        self._n = int(arrays["n"])
        self._mean = float(arrays["mean"])
        self._m2 = float(arrays["m2"])
        return self


@dataclass
class EventLog:
    """Append-only, thread-friendly record of stream events."""

    events: List[DriftEvent] = field(default_factory=list)

    def append(self, event: DriftEvent) -> DriftEvent:
        self.events.append(event)
        # Every detector firing and lifecycle notification funnels through
        # here, so one hook gives the structured log the full drift story
        # (restores rebuild via the constructor and do not re-emit).
        log_event(
            f"stream.{event.kind}",
            message=event.message,
            step=event.step,
            value=event.value,
            threshold=event.threshold,
        )
        return event

    def of_kind(self, kind: str) -> List[DriftEvent]:
        return [event for event in self.events if event.kind == kind]

    def to_records(self) -> List[Dict[str, Any]]:
        """The full log as JSON-serializable records (oldest first)."""
        return [event.to_dict() for event in self.events]

    @classmethod
    def from_records(cls, records: List[Dict[str, Any]]) -> "EventLog":
        return cls(events=[DriftEvent.from_dict(record) for record in records])

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
