"""The online forecasting loop: predict → observe → update → (re)calibrate.

:class:`StreamingForecaster` turns a fitted batch forecaster into a live
system — it is a one-stream fleet: the per-stream state machine (pending
ledger, adaptive conformal calibration, rolling monitors, drift detectors)
lives in a :class:`~repro.streaming.shard.StreamCore`, and this runner wires
exactly one core to one model plus the refit/promotion machinery.  The
multi-stream analogue, :class:`~repro.fleet.StreamFleet`, owns many cores
and funnels their per-tick predicts through one shared batched server.

Each call to :meth:`observe` ingests one observation row (NaN entries mark
dropped-out sensors) and

1. **resolves** every pending forecast the new observation completes — the
   prediction made ``h+1`` steps ago forecast this step at horizon index
   ``h`` — feeding the rolling :class:`~repro.streaming.monitor.StreamingMonitor`
   and the per-horizon
   :class:`~repro.streaming.aci.AdaptiveConformalCalibrator`;
2. **detects drift** by routing the step's coverage / error signals through
   the configured detectors;
3. on drift, **recalibrates**: the nonconformity buffers are rebuilt from
   post-drift data and, when a ``refit_fn`` is configured, a replacement
   model is fitted (in a background thread by default);
4. **publishes** the refit according to the configured
   :class:`~repro.streaming.promotion.PromotionPolicy` — immediately (the
   legacy ``swap_model`` path), or after a shadow/canary trial in which the
   candidate is scored on live observations against the incumbent and
   promoted only when its rolling MAE/coverage win; either way zero
   in-flight requests are dropped;
5. **forecasts** the next ``horizon`` steps from the updated history window
   and emits width-adapted conformal intervals.

The runner is deliberately model-agnostic: anything with a batch ``predict``
returning a :class:`~repro.core.inference.PredictionResult` works — a
:class:`~repro.api.Forecaster`, a raw UQ method, or the persistence baseline.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.inference import PredictionResult
from repro.streaming.aci import AdaptiveConformalCalibrator
from repro.streaming.drift import DriftEvent, EventLog
from repro.streaming.monitor import StreamingMonitor
from repro.streaming.promotion import CandidateTrial, PromotionPolicy
from repro.streaming.shard import StreamCore


@dataclass
class StepResult:
    """Everything one :meth:`StreamingForecaster.observe` call produced."""

    step: int
    observed: np.ndarray                     # the ingested (gap-filled) row
    mask: np.ndarray                         # which sensors were actually observed
    prediction: Optional[PredictionResult]   # calibrated forecast, (1, H, N); None during warm-up
    lower: Optional[np.ndarray]              # conformal bounds of that forecast, (H, N)
    upper: Optional[np.ndarray]
    coverage: float                          # rolling coverage (percent; NaN early on)
    events: List[DriftEvent] = field(default_factory=list)
    served_by: str = "incumbent"             # "incumbent" | "candidate" (canary trials)


class StreamingForecaster:
    """Online wrapper driving a batch forecaster over a live observation feed.

    Parameters
    ----------
    forecaster:
        Object with ``predict(windows) -> PredictionResult``; its training
        config (when present) supplies ``history`` / ``horizon`` defaults.
    history, horizon:
        Window geometry; required only when ``forecaster`` does not carry a
        config exposing them.
    calibrator:
        An :class:`AdaptiveConformalCalibrator`; built from ``aci`` keyword
        defaults when omitted.
    aci:
        Keyword overrides for the default calibrator's :class:`ACIConfig`
        (ignored when ``calibrator`` is given).
    monitor:
        A :class:`StreamingMonitor`; a default rolling-day monitor is built
        when omitted.
    detectors:
        Drift detectors consuming the per-step ``coverage`` / ``abs_error``
        signals; defaults to a coverage-breach plus an error-CUSUM detector.
    server:
        Optional :class:`~repro.serving.InferenceServer` that external
        clients query; drift-triggered refits are published to it through
        ``swap_model`` (queued requests are never dropped).
    refit_fn:
        ``refit_fn(recent) -> model`` producing a replacement predictor from
        the ``(steps, nodes)`` array of recent observations.  Without it,
        recalibration still rebuilds the conformal state online.
    refit_window:
        How many recent observations are retained for ``refit_fn``.
    cooldown:
        Minimum number of steps between recalibration triggers.
    background_refit:
        Run ``refit_fn`` on a daemon thread (default) or synchronously.
    version_prefix:
        Prefix of the versions published to ``server`` on swap.
    promotion:
        How refits are published: ``"immediate"`` (default, the legacy
        instant swap), ``"shadow"`` or ``"canary"`` — or a full
        :class:`~repro.streaming.promotion.PromotionPolicy`.  Non-immediate
        modes stage the refit as a candidate, score it on live observations
        against the incumbent, and promote only when its rolling
        MAE/coverage beat the incumbent's; a losing candidate is rejected
        and, if it was deployed to the server, rolled back.
    """

    def __init__(
        self,
        forecaster: Any,
        history: Optional[int] = None,
        horizon: Optional[int] = None,
        calibrator: Optional[AdaptiveConformalCalibrator] = None,
        aci: Optional[Dict[str, Any]] = None,
        monitor: Optional[StreamingMonitor] = None,
        detectors: Optional[Sequence[Any]] = None,
        server: Optional[Any] = None,
        refit_fn: Optional[Callable[[Optional[np.ndarray]], Any]] = None,
        refit_window: int = 288,
        cooldown: int = 100,
        background_refit: bool = True,
        version_prefix: str = "stream",
        promotion: Union[str, PromotionPolicy] = "immediate",
    ) -> None:
        self.forecaster = forecaster
        history, horizon = self._resolve_geometry(forecaster, history, horizon)
        if calibrator is not None and calibrator.horizon != horizon:
            raise ValueError(
                f"calibrator horizon {calibrator.horizon} does not match "
                f"runner horizon {horizon}"
            )
        self.core = StreamCore(
            history,
            horizon,
            calibrator=calibrator,
            aci=aci,
            monitor=monitor,
            detectors=detectors,
            refit_window=refit_window,
        )
        self.server = server
        self.refit_fn = refit_fn
        self.cooldown = int(cooldown)
        self.background_refit = bool(background_refit)
        self.version_prefix = str(version_prefix)
        self.promotion_policy = (
            promotion
            if isinstance(promotion, PromotionPolicy)
            else PromotionPolicy(mode=str(promotion))
        )

        self._predict: Callable[[np.ndarray], PredictionResult] = forecaster.predict
        self._lock = threading.Lock()
        self._last_trigger: Optional[int] = None
        self._refit_thread: Optional[threading.Thread] = None
        self._refit_count = 0
        self._trial: Optional[CandidateTrial] = None
        self._displaced: Optional[str] = None  # incumbent kept for manual rollback

    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_geometry(
        forecaster: Any, history: Optional[int], horizon: Optional[int]
    ) -> Tuple[int, int]:
        """History/horizon from explicit args, else the forecaster's config."""
        config = getattr(forecaster, "config", None)
        if config is None:
            config = getattr(getattr(forecaster, "method", None), "config", None)
        if history is None:
            history = getattr(config, "history", None)
        if horizon is None:
            horizon = getattr(config, "horizon", None) or getattr(forecaster, "horizon", None)
        if history is None or horizon is None:
            raise ValueError(
                "cannot infer history/horizon from the forecaster; pass history= and horizon="
            )
        if history < 1 or horizon < 1:
            raise ValueError("history and horizon must be >= 1")
        return int(history), int(horizon)

    # Per-stream state lives on the core; these keep the runner's historical
    # surface (tests, examples and downstream code read runner.monitor etc.).
    @property
    def history(self) -> int:
        return self.core.history

    @property
    def horizon(self) -> int:
        return self.core.horizon

    @property
    def calibrator(self) -> AdaptiveConformalCalibrator:
        return self.core.calibrator

    @property
    def monitor(self) -> StreamingMonitor:
        return self.core.monitor

    @monitor.setter
    def monitor(self, monitor: StreamingMonitor) -> None:
        self.core.monitor = monitor

    @property
    def detectors(self) -> List[Any]:
        return self.core.detectors

    @property
    def event_log(self) -> EventLog:
        return self.core.event_log

    @event_log.setter
    def event_log(self, log: EventLog) -> None:
        self.core.event_log = log

    @property
    def refit_window(self) -> int:
        return self.core.refit_window

    @property
    def step(self) -> int:
        """Number of observations ingested so far."""
        return self.core.step

    @property
    def warmed_up(self) -> bool:
        return self.core.warmed_up

    @property
    def trial(self) -> Optional[CandidateTrial]:
        """The live candidate trial while a shadow/canary evaluation runs."""
        with self._lock:
            return self._trial

    # ------------------------------------------------------------------ #
    # The online loop
    # ------------------------------------------------------------------ #
    def observe(
        self, observation: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> StepResult:
        """Ingest one observation row and emit the next calibrated forecast."""
        core = self.core
        obs, valid = core.normalize(observation, mask)
        s = core.step
        events: List[DriftEvent] = []
        with self._lock:
            trial = self._trial

        # 1. Resolve pending forecasts this observation completes — the
        #    incumbent's always, and a trialed candidate's alongside.
        resolved = core.resolve(s, obs, valid)
        if trial is not None:
            if resolved.steps is not None:
                # Same resolved rows, restricted to post-trial forecasts, so
                # the incumbent-vs-candidate comparison covers identical
                # windows.
                trial.observe_incumbent(
                    resolved.target,
                    resolved.mean,
                    resolved.lower,
                    resolved.upper,
                    resolved.steps,
                )
            trial.resolve(s, obs, valid)
            decision = trial.verdict()
            if decision is not None:
                events.extend(self._finish_trial(trial, decision, s))
                trial = None

        # 2. Route the step's signals through the drift detectors.
        events.extend(core.detect(s, resolved.covered, resolved.abs_error))

        # 3. Drift-triggered recalibration (rate-limited by the cooldown,
        #    and never overlapping an in-flight refit or a running trial).
        if events and self._can_trigger(s):
            self._trigger_recalibration(events[0], s)

        # 4. Ingest the observation (carry-forward imputation for gaps).
        filled = core.append(obs, valid)

        # 5. Forecast the next horizon from the updated window.
        prediction = lower = upper = None
        served_by = "incumbent"
        window = core.window()
        if window is not None:
            with self._lock:
                predict = self._predict
            raw = predict(window)
            prediction, lower, upper = core.record(raw)
            # During a trial the candidate forecasts the same window; in
            # canary mode it also serves its share of the emitted forecasts.
            if trial is not None:
                candidate_raw = trial.predict(window)
                candidate_calibrated, cand_lower_b, cand_upper_b = core.calibrate(
                    candidate_raw
                )
                trial.record(
                    s, candidate_raw.mean[0], cand_lower_b[0], cand_upper_b[0]
                )
                if trial.serve_candidate_now():
                    prediction = candidate_calibrated
                    lower, upper = cand_lower_b[0], cand_upper_b[0]
                    served_by = "candidate"

        core.advance()
        return StepResult(
            step=s,
            observed=filled,
            mask=valid,
            prediction=prediction,
            lower=lower,
            upper=upper,
            coverage=self.monitor.coverage,
            events=events,
            served_by=served_by,
        )

    def run(
        self, feed: Iterable[np.ndarray], max_steps: Optional[int] = None
    ) -> List[StepResult]:
        """Drive :meth:`observe` over a feed; returns the per-step results."""
        results: List[StepResult] = []
        for index, observation in enumerate(feed):
            if max_steps is not None and index >= max_steps:
                break
            results.append(self.observe(observation))
        return results

    # ------------------------------------------------------------------ #
    def _can_trigger(self, s: int) -> bool:
        """Cooldown elapsed, no refit in flight, and no trial still running.

        The in-flight guard matters beyond thread count: were a second refit
        allowed to start, the *older-data* one could finish last and publish
        a stale model over the fresher one — and a second candidate would
        corrupt the running trial's like-for-like comparison.
        """
        if self._refit_thread is not None and self._refit_thread.is_alive():
            return False
        with self._lock:
            if self._trial is not None:
                return False
        return self._last_trigger is None or s - self._last_trigger >= self.cooldown

    def _trigger_recalibration(self, cause: DriftEvent, s: int) -> None:
        """Kick off conformal-state rebuild and (optionally) a model refit."""
        self._last_trigger = s
        self.event_log.append(
            DriftEvent(
                kind="recalibration_started",
                step=s,
                value=cause.value,
                threshold=cause.threshold,
                message=f"triggered by {cause.kind}",
            )
        )
        recent = self.core.recent()

        def work() -> None:
            try:
                staged = False
                if self.refit_fn is not None:
                    model = self.refit_fn(recent)
                    predict = model.predict if hasattr(model, "predict") else model
                    if not callable(predict):
                        raise TypeError("refit_fn must return a predictor or predict function")
                    if self.promotion_policy.mode == "immediate":
                        with self._lock:
                            # Adopt the replacement wholesale so save() persists
                            # the model actually serving, not the pre-drift one.
                            self.forecaster = model
                            self._predict = predict
                            self._refit_count += 1
                            version = f"{self.version_prefix}-recal{self._refit_count}"
                        if self.server is not None:
                            previous = self.server.swap_model(model, version=version)
                            self.event_log.append(
                                DriftEvent(
                                    kind="model_swapped",
                                    step=s,
                                    value=float(self._refit_count),
                                    threshold=0.0,
                                    message=f"{previous} -> {version}",
                                )
                            )
                    else:
                        self._stage_candidate(model, predict, s)
                        staged = True
                # Pre-drift scores only slow adaptation down; refill the
                # nonconformity buffers from post-drift data.
                self.core.reset_scores(keep_alpha=True)
                self.event_log.append(
                    DriftEvent(
                        kind="recalibrated",
                        step=s,
                        value=float(self._refit_count),
                        threshold=0.0,
                        message="conformal state rebuilt"
                        + (
                            ", candidate staged"
                            if staged
                            else (", model refitted" if self.refit_fn is not None else "")
                        ),
                    )
                )
            except Exception as error:  # surfaced via the event log, not the loop
                self.event_log.append(
                    DriftEvent(
                        kind="recalibration_failed",
                        step=s,
                        value=0.0,
                        threshold=0.0,
                        message=f"{type(error).__name__}: {error}",
                    )
                )

        if self.background_refit:
            self._refit_thread = threading.Thread(
                target=work, name="repro-stream-refit", daemon=True
            )
            self._refit_thread.start()
        else:
            work()

    # ------------------------------------------------------------------ #
    # Candidate trials (shadow / canary promotion)
    # ------------------------------------------------------------------ #
    def _server_supports_pool(self) -> bool:
        return (
            self.server is not None
            and hasattr(self.server, "deploy")
            and hasattr(self.server, "router")
        )

    def _stage_candidate(self, model: Any, predict: Callable, s: int) -> None:
        """Open a shadow/canary trial instead of adopting the refit outright."""
        policy = self.promotion_policy
        with self._lock:
            self._refit_count += 1
            count = self._refit_count
            name = f"{self.version_prefix}-cand{count}"
            version = f"{self.version_prefix}-recal{count}"
            trial = CandidateTrial(
                model,
                predict,
                policy,
                # The first step where *both* models are guaranteed to have
                # forecast: scoring earlier steps would judge the pair on
                # different windows.
                start_step=self.core.step + 1,
                horizon=self.horizon,
                nominal=1.0 - self.calibrator.config.significance,
                name=name,
                version=version,
            )
        if self._server_supports_pool():
            # Expose the candidate to external traffic for the trial: shadow
            # mirrors every request, canary serves its weighted share.  The
            # caller's router is restored when the trial ends.
            from repro.serving.router import ShadowRouter, TrafficSplitRouter

            self.server.deploy(name, model, version=version)
            trial.deployed = True
            trial.previous_router = self.server.router
            if policy.mode == "shadow":
                self.server.router = ShadowRouter(
                    shadows=[name], inner=trial.previous_router
                )
            else:
                # The non-canary share keeps the caller's routing intact.
                self.server.router = TrafficSplitRouter(
                    {None: 1.0 - policy.canary_fraction, name: policy.canary_fraction},
                    inner=trial.previous_router,
                )
        with self._lock:
            self._trial = trial
        self.event_log.append(
            DriftEvent(
                kind="candidate_staged",
                step=s,
                value=float(count),
                threshold=0.0,
                message=(
                    f"{policy.mode} trial of {name} ({version}), "
                    f"verdict after {policy.eval_steps} scored steps"
                ),
            )
        )

    def _finish_trial(
        self, trial: CandidateTrial, decision: Dict[str, Any], s: int
    ) -> List[DriftEvent]:
        """Promote or reject the trialed candidate; returns the logged events."""
        events: List[DriftEvent] = []
        promote = bool(decision["promote"])
        with self._lock:
            self._trial = None
            if promote:
                # Adopt the winner wholesale so save() persists the model
                # actually serving, not the losing incumbent.
                self.forecaster = trial.model
                self._predict = trial.predict
        if trial.deployed:
            # Restore the caller's router before touching the route table so
            # no new request targets a retiring candidate.
            self.server.router = trial.previous_router
            if promote:
                previous = self.server.promote(trial.name)
                # Keep exactly one displaced generation around for a manual
                # rollback; older ones would otherwise accumulate in the
                # pool forever on a long drifting stream.
                stale, self._displaced = self._displaced, previous
                if stale is not None and stale in self.server.pool:
                    self.server.undeploy(stale)
                events.append(
                    DriftEvent(
                        kind="model_swapped",
                        step=s,
                        value=float(self._refit_count),
                        threshold=0.0,
                        message=f"{previous} -> {trial.name} ({trial.version})",
                    )
                )
            else:
                # Never promoted, so retiring it cannot touch the default
                # route; queued requests routed at it fall back, zero drops.
                self.server.undeploy(trial.name)
        elif self.server is not None and promote:
            previous = self.server.swap_model(trial.model, version=trial.version)
            events.append(
                DriftEvent(
                    kind="model_swapped",
                    step=s,
                    value=float(self._refit_count),
                    threshold=0.0,
                    message=f"{previous} -> {trial.version}",
                )
            )
        if promote:
            # The winner's residual scale differs from the incumbent's;
            # rebuild the nonconformity buffers against it.
            self.core.reset_scores(keep_alpha=True)
        events.append(
            DriftEvent(
                kind="candidate_promoted" if promote else "candidate_rejected",
                step=s,
                value=decision["candidate_mae"],
                threshold=decision["incumbent_mae"],
                message=(
                    f"{trial.name}: MAE {decision['candidate_mae']:.4g} vs "
                    f"incumbent {decision['incumbent_mae']:.4g}, coverage "
                    f"{decision['candidate_coverage']:.1f}% vs "
                    f"{decision['incumbent_coverage']:.1f}% over "
                    f"{decision['scored_steps']} scored steps"
                ),
            )
        )
        for event in events:
            self.event_log.append(event)
        return events

    def join_refit(self, timeout: Optional[float] = 30.0) -> None:
        """Block until any in-flight background refit has finished."""
        thread = self._refit_thread
        if thread is not None:
            thread.join(timeout=timeout)

    # ------------------------------------------------------------------ #
    # Ops
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """One metrics-endpoint-ready dict: rolling metrics, drift, serving.

        The single-stream analogue of
        :meth:`~repro.fleet.StreamFleet.snapshot`: the monitor's rolling
        PICP/MPIW/MAE/RMSE/Winkler bundle, stream progress, refit/trial
        state, the drift-event log as JSON records, and (when a server is
        attached) its serving stats.
        """
        snap: Dict[str, Any] = {
            "step": self.step,
            "warmed_up": self.warmed_up,
            "refit_count": self._refit_count,
            "trial": repr(self.trial) if self.trial is not None else None,
            "metrics": self.monitor.snapshot(),
            "events": self.event_log.to_records(),
        }
        if self.server is not None and hasattr(self.server, "stats"):
            snap["server"] = self.server.stats
        return snap

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    MODEL_SUBDIR = "model"
    ACI_SUBDIR = "aci"
    STREAM_SUBDIR = "stream"

    #: On-disk format revision of the runner-state checkpoint.  Version 2
    #: stores the full :class:`StreamCore` state (detectors, history and
    #: pending ledgers included); version 1 checkpoints (monitor + events
    #: only) are still readable.
    STREAM_FORMAT_VERSION = 2

    def save(self, directory: Union[str, Path]) -> Path:
        """Persist the full stream state (always) and the model (if it can).

        Everything the core tracks online — the ACI calibration buffers, the
        rolling :class:`StreamingMonitor` windows, the drift detectors'
        accumulated evidence, the event log and the history / pending /
        recent ledgers — round-trips bit-identically through the shared
        ``get_state`` / ``set_state`` array protocol, so a restarted serving
        process resumes the stream exactly where it stopped: warm window,
        outstanding forecasts still scoreable, detectors still mid-debounce.
        Forecasters exposing ``save`` (the :class:`~repro.api.Forecaster`
        facade) are stored alongside so :meth:`load` restores the entire
        streaming system.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        from repro.utils.serialization import save_checkpoint

        with self._lock:
            forecaster = self.forecaster
        # The calibrator is additionally stored under aci/ in its own
        # directory format: load() needs it to construct the runner before
        # the core state (which embeds the same buffers) is restored.
        self.calibrator.save(directory / self.ACI_SUBDIR)
        core_state = self.core.get_state()
        stream_meta = {
            "kind": "stream",
            "format_version": self.STREAM_FORMAT_VERSION,
            "step": self.core.step,
            "last_trigger": self._last_trigger,
            "refit_count": self._refit_count,
            "core": core_state["meta"],
            "events": self.event_log.to_records(),
        }
        save_checkpoint(
            directory / self.STREAM_SUBDIR, stream_meta, core_state["arrays"]
        )
        saver = getattr(forecaster, "save", None)
        if callable(saver):
            saver(directory / self.MODEL_SUBDIR)
        return directory

    @classmethod
    def load(
        cls,
        directory: Union[str, Path],
        forecaster: Optional[Any] = None,
        **kwargs: Any,
    ) -> "StreamingForecaster":
        """Rebuild a streaming forecaster from a :meth:`save` directory.

        ``forecaster`` overrides (or substitutes, for non-checkpointable
        predictors) the stored model checkpoint.  Monitor state and the
        event log are restored when present (checkpoints written before the
        runner-state format simply start with fresh monitors).
        """
        directory = Path(directory)
        calibrator = AdaptiveConformalCalibrator.load(directory / cls.ACI_SUBDIR)
        if forecaster is None:
            model_dir = directory / cls.MODEL_SUBDIR
            if not model_dir.exists():
                raise FileNotFoundError(
                    f"{directory} holds no model checkpoint; pass forecaster= explicitly"
                )
            from repro.api import Forecaster

            forecaster = Forecaster.load(model_dir)
        runner = cls(forecaster, calibrator=calibrator, **kwargs)
        stream_dir = directory / cls.STREAM_SUBDIR
        if stream_dir.exists():
            from repro.utils.serialization import load_checkpoint

            meta, arrays = load_checkpoint(stream_dir)
            version = meta.get("format_version")
            if version not in (1, cls.STREAM_FORMAT_VERSION):
                raise ValueError(
                    f"unsupported stream checkpoint format {version!r} "
                    f"(this build reads versions 1-{cls.STREAM_FORMAT_VERSION})"
                )
            if version >= 2:
                # The core state embeds everything: calibration, monitor,
                # detectors, event log, step and the warm ledgers.
                runner.core.set_state({"meta": meta["core"], "arrays": arrays})
            else:
                monitor_meta = meta["monitor"]
                if runner.monitor.window != int(monitor_meta["window"]):
                    runner.monitor = StreamingMonitor(
                        window=int(monitor_meta["window"]),
                        significance=float(monitor_meta["significance"]),
                    )
                runner.monitor.set_state({"meta": monitor_meta, "arrays": arrays})
                runner.event_log = EventLog.from_records(meta["events"])
                runner.core._step = int(meta["step"])
            runner._last_trigger = (
                int(meta["last_trigger"]) if meta["last_trigger"] is not None else None
            )
            runner._refit_count = int(meta["refit_count"])
        return runner

    def __repr__(self) -> str:
        return (
            f"StreamingForecaster(history={self.history}, horizon={self.horizon}, "
            f"step={self.core.step}, mode={self.calibrator.config.mode!r}, "
            f"events={len(self.event_log)})"
        )
