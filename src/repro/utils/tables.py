"""Plain-text table formatting for the benchmark harness output."""

from __future__ import annotations

from typing import List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell, precision: int) -> str:
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    precision: int = 2,
    title: str = "",
) -> str:
    """Render a fixed-width text table (used by every bench target).

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values; floats are rounded to ``precision`` decimals.
    title:
        Optional title line printed above the table.
    """
    rendered: List[List[str]] = [[_render(cell, precision) for cell in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered)) if rendered else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
