"""Global seeding helper.

The library itself threads explicit ``numpy.random.Generator`` objects
through every stochastic component (weight init, dropout masks, data
shuffling, MC sampling), so :func:`seed_everything` exists mainly for user
scripts and examples that also rely on the legacy global NumPy state.
"""

from __future__ import annotations

import random

import numpy as np


def seed_everything(seed: int) -> np.random.Generator:
    """Seed Python's and NumPy's global RNGs and return a fresh Generator."""
    random.seed(seed)
    np.random.seed(seed)
    return np.random.default_rng(seed)
