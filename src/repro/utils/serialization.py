"""Model checkpointing as compressed ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.nn.module import Module


def save_model_weights(model: Module, path: Union[str, Path]) -> Path:
    """Save a module's ``state_dict`` to ``path`` (``.npz`` is appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **model.state_dict())
    return path


def load_model_weights(model: Module, path: Union[str, Path]) -> Module:
    """Load weights saved with :func:`save_model_weights` into ``model``."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint {path} does not exist")
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    model.load_state_dict(state)
    return model
