"""Model checkpointing: ``.npz`` weight archives and directory checkpoints.

Two layers:

* :func:`save_model_weights` / :func:`load_model_weights` — a single module's
  ``state_dict`` as one compressed ``.npz`` file, with the checkpoint's key
  set validated against the receiving architecture before any weight is
  touched;
* :func:`save_checkpoint` / :func:`load_checkpoint` — a directory pairing a
  JSON metadata document with an ``.npz`` archive of named arrays, the
  on-disk format of the full-state :class:`~repro.api.Forecaster`
  checkpoints (spec + weights + scaler statistics + calibration state).

:func:`pack_state_arrays` / :func:`unpack_state_arrays` namespace several
state dicts (model weights, ensemble members, snapshots) into one flat
archive using dotted prefixes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Tuple, Union

import numpy as np

from repro.nn.module import Module


def save_model_weights(model: Module, path: Union[str, Path]) -> Path:
    """Save a module's ``state_dict`` to ``path`` (``.npz`` is appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **model.state_dict())
    return path


def load_model_weights(model: Module, path: Union[str, Path]) -> Module:
    """Load weights saved with :func:`save_model_weights` into ``model``.

    The checkpoint's parameter names are validated against the model before
    any weight is written: a mismatched architecture raises a ``ValueError``
    listing the missing and unexpected parameter names, instead of the
    generic mapping error ``load_state_dict`` would produce.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint {path} does not exist")
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    parameters = dict(model.named_parameters())
    missing = sorted(set(parameters) - set(state))
    unexpected = sorted(set(state) - set(parameters))
    if missing or unexpected:
        raise ValueError(
            f"checkpoint {path} does not match the {model.__class__.__name__} "
            f"architecture: missing parameters {missing or 'none'}; "
            f"unexpected parameters {unexpected or 'none'}"
        )
    mismatched = sorted(
        f"{name} (expected {parameters[name].data.shape}, got {state[name].shape})"
        for name in parameters
        if state[name].shape != parameters[name].data.shape
    )
    if mismatched:
        raise ValueError(
            f"checkpoint {path} does not match the {model.__class__.__name__} "
            f"architecture: shape mismatches {mismatched}"
        )
    model.load_state_dict(state)
    return model


# ---------------------------------------------------------------------- #
# Namespaced state archives
# ---------------------------------------------------------------------- #
def pack_state_arrays(prefix: str, state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Prefix every key of a state dict (e.g. ``model.`` or ``members.0.``)."""
    return {f"{prefix}{name}": np.asarray(value) for name, value in state.items()}


def unpack_state_arrays(prefix: str, arrays: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Extract and strip one prefix's entries from a flat array archive."""
    offset = len(prefix)
    return {name[offset:]: value for name, value in arrays.items() if name.startswith(prefix)}


# ---------------------------------------------------------------------- #
# Directory checkpoints (JSON metadata + npz arrays)
# ---------------------------------------------------------------------- #
CHECKPOINT_META_FILE = "checkpoint.json"
CHECKPOINT_ARRAYS_FILE = "arrays.npz"


def save_checkpoint(
    directory: Union[str, Path],
    meta: Dict[str, Any],
    arrays: Dict[str, np.ndarray],
) -> Path:
    """Write a directory checkpoint: JSON-able ``meta`` + named ``arrays``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / CHECKPOINT_META_FILE, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    np.savez_compressed(directory / CHECKPOINT_ARRAYS_FILE, **arrays)
    return directory


def load_checkpoint(
    directory: Union[str, Path],
) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Read a directory checkpoint written by :func:`save_checkpoint`."""
    directory = Path(directory)
    meta_path = directory / CHECKPOINT_META_FILE
    arrays_path = directory / CHECKPOINT_ARRAYS_FILE
    if not meta_path.exists() or not arrays_path.exists():
        raise FileNotFoundError(
            f"{directory} is not a checkpoint directory (expected "
            f"{CHECKPOINT_META_FILE} and {CHECKPOINT_ARRAYS_FILE})"
        )
    with open(meta_path, "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    with np.load(arrays_path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    return meta, arrays
