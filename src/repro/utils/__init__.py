"""Small shared utilities: seeding, checkpointing, table formatting."""

from repro.utils.jsonsafe import json_ready
from repro.utils.seed import seed_everything
from repro.utils.serialization import (
    load_checkpoint,
    load_model_weights,
    pack_state_arrays,
    save_checkpoint,
    save_model_weights,
    unpack_state_arrays,
)
from repro.utils.tables import format_table

__all__ = [
    "json_ready",
    "seed_everything",
    "save_model_weights",
    "load_model_weights",
    "save_checkpoint",
    "load_checkpoint",
    "pack_state_arrays",
    "unpack_state_arrays",
    "format_table",
]
