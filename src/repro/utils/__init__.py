"""Small shared utilities: seeding, checkpointing, table formatting."""

from repro.utils.seed import seed_everything
from repro.utils.serialization import load_model_weights, save_model_weights
from repro.utils.tables import format_table

__all__ = ["seed_everything", "save_model_weights", "load_model_weights", "format_table"]
