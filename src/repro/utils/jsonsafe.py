"""Deep coercion of ops/metrics structures into JSON-native types.

Every ops surface in the repo — :meth:`StreamFleet.snapshot`,
:attr:`InferenceServer.stats`, :attr:`ModelPool.stats`, cache stats — promises
a ``json.dumps``-safe dict.  NumPy scalars leak into such dicts easily (a
counter incremented with ``array[i]``, a mean computed by a reduction), and
``json.dumps`` rejects ``np.int64`` outright while ``np.float64`` merely
happens to work because it subclasses :class:`float`.  :func:`json_ready`
walks a structure once and coerces everything to native Python types at the
source, so the promise holds by construction instead of by audit.

The HTTP gateway additionally needs *strict* JSON (RFC 8259 has no ``NaN``
token); ``nan_to_none=True`` maps non-finite floats to ``None`` for that
boundary while the in-process snapshots keep their NaNs.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

__all__ = ["json_ready"]


def _coerce_float(value: float, nan_to_none: bool) -> Any:
    value = float(value)
    if nan_to_none and not math.isfinite(value):
        return None
    return value


def json_ready(value: Any, nan_to_none: bool = False) -> Any:
    """Return ``value`` rebuilt from JSON-native types only.

    Handles nested dicts / lists / tuples, NumPy arrays (to nested lists) and
    NumPy scalars (to the matching Python scalar).  Dict keys are coerced the
    same way when they are NumPy scalars; anything unrecognized falls back to
    ``str`` so an exotic object can never poison a whole snapshot.
    """
    if value is None or isinstance(value, (str, bool, int)) and not isinstance(value, np.generic):
        return value
    if isinstance(value, float):
        return _coerce_float(value, nan_to_none)
    if isinstance(value, np.generic):
        item = value.item()
        if isinstance(item, float):
            return _coerce_float(item, nan_to_none)
        return item
    if isinstance(value, np.ndarray):
        return json_ready(value.tolist(), nan_to_none=nan_to_none)
    if isinstance(value, dict):
        return {
            json_ready(key, nan_to_none=nan_to_none): json_ready(item, nan_to_none=nan_to_none)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_ready(item, nan_to_none=nan_to_none) for item in value]
    return str(value)
