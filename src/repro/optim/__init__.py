"""Optimizers, learning-rate schedulers and weight-averaging utilities.

Contains everything the DeepSTUQ training recipe needs: Adam (pre-training
and AWA re-training), SGD (for comparison, the original SWA paper uses it),
L-BFGS (temperature-scaling calibration), the cyclic cosine learning-rate
schedule of AWA (paper Eq. 16) and the running weight average (paper Eq. 15).
"""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.lbfgs import LBFGS, minimize_scalar_lbfgs
from repro.optim.lr_scheduler import (
    ConstantLR,
    CosineAnnealingLR,
    CyclicCosineLR,
    LRScheduler,
)
from repro.optim.swa import WeightAverager

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "LBFGS",
    "minimize_scalar_lbfgs",
    "LRScheduler",
    "ConstantLR",
    "CosineAnnealingLR",
    "CyclicCosineLR",
    "WeightAverager",
]
