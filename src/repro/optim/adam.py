"""Adam optimizer (Kingma & Ba, 2015)."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates.

    The paper uses Adam with learning rate 3e-3 and weight decay 1e-6 for
    pre-training, and (unlike the original SWA recipe) also for the AWA
    re-training stage.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        bias1 = 1.0 - self.beta1 ** self.step_count
        bias2 = 1.0 - self.beta2 ** self.step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = self._gradient(param)
            if grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
