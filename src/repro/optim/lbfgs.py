"""L-BFGS optimizer used by the temperature-scaling calibration stage.

The paper (Section IV-C3) optimizes the single temperature parameter ``T``
with Limited-memory BFGS.  Two interfaces are provided:

* :class:`LBFGS` — a closure-style optimizer over arbitrary parameters,
  implemented with the two-loop recursion, mirroring ``torch.optim.LBFGS``.
* :func:`minimize_scalar_lbfgs` — a convenience wrapper that minimizes a
  scalar objective via SciPy's reference implementation; it is used by the
  calibration module where the objective is a cheap closed-form function of
  cached predictions.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Tuple

import numpy as np
from scipy import optimize

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class LBFGS(Optimizer):
    """Limited-memory BFGS with the standard two-loop recursion.

    Usage follows the closure pattern::

        optimizer = LBFGS(model.parameters(), lr=0.02, max_iter=500)

        def closure():
            optimizer.zero_grad()
            loss = compute_loss()
            loss.backward()
            return loss

        optimizer.step(closure)

    A fixed step size ``lr`` is used (no line search); ``max_iter`` iterations
    are performed inside a single ``step`` call, like PyTorch's LBFGS.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1.0,
        max_iter: int = 20,
        history_size: int = 10,
        tolerance_grad: float = 1e-10,
    ) -> None:
        super().__init__(parameters, lr)
        if max_iter < 1 or history_size < 1:
            raise ValueError("max_iter and history_size must be >= 1")
        self.max_iter = max_iter
        self.history_size = history_size
        self.tolerance_grad = tolerance_grad

    # -- flat parameter/gradient helpers ---------------------------------- #
    def _flat_params(self) -> np.ndarray:
        return np.concatenate([p.data.reshape(-1) for p in self.parameters])

    def _flat_grad(self) -> np.ndarray:
        chunks = []
        for param in self.parameters:
            grad = param.grad if param.grad is not None else np.zeros_like(param.data)
            chunks.append(grad.reshape(-1))
        return np.concatenate(chunks)

    def _set_flat_params(self, flat: np.ndarray) -> None:
        offset = 0
        for param in self.parameters:
            size = param.data.size
            param.data[...] = flat[offset : offset + size].reshape(param.data.shape)
            offset += size

    # -- optimization ------------------------------------------------------ #
    def step(self, closure: Callable[[], "object"]) -> float:
        """Run ``max_iter`` L-BFGS iterations; returns the final loss value."""
        s_history: List[np.ndarray] = []
        y_history: List[np.ndarray] = []

        loss = closure()
        loss_value = float(loss.item())
        grad = self._flat_grad()

        for _ in range(self.max_iter):
            if np.max(np.abs(grad)) < self.tolerance_grad:
                break
            direction = self._two_loop_direction(grad, s_history, y_history)
            old_params = self._flat_params()
            old_grad = grad

            self._set_flat_params(old_params + self.lr * direction)
            loss = closure()
            loss_value = float(loss.item())
            grad = self._flat_grad()

            s = self._flat_params() - old_params
            y = grad - old_grad
            if float(y @ s) > 1e-10:
                s_history.append(s)
                y_history.append(y)
                if len(s_history) > self.history_size:
                    s_history.pop(0)
                    y_history.pop(0)
            self.step_count += 1
        return loss_value

    @staticmethod
    def _two_loop_direction(
        grad: np.ndarray, s_history: List[np.ndarray], y_history: List[np.ndarray]
    ) -> np.ndarray:
        q = grad.copy()
        alphas = []
        for s, y in zip(reversed(s_history), reversed(y_history)):
            rho = 1.0 / float(y @ s)
            alpha = rho * float(s @ q)
            q -= alpha * y
            alphas.append((rho, alpha))
        if s_history:
            s, y = s_history[-1], y_history[-1]
            gamma = float(s @ y) / float(y @ y)
            q *= gamma
        for (s, y), (rho, alpha) in zip(zip(s_history, y_history), reversed(alphas)):
            beta = rho * float(y @ q)
            q += (alpha - beta) * s
        return -q


def minimize_scalar_lbfgs(
    objective: Callable[[float], Tuple[float, float]],
    x0: float,
    max_iter: int = 500,
) -> float:
    """Minimize a differentiable scalar objective with SciPy's L-BFGS-B.

    Parameters
    ----------
    objective:
        Callable returning ``(value, gradient)`` at a scalar point.
    x0:
        Starting point.

    Returns
    -------
    float
        The minimizing argument.
    """

    def fun(x: np.ndarray) -> Tuple[float, np.ndarray]:
        value, gradient = objective(float(x[0]))
        return value, np.array([gradient])

    result = optimize.minimize(
        fun, x0=np.array([x0]), jac=True, method="L-BFGS-B", options={"maxiter": max_iter}
    )
    return float(result.x[0])
