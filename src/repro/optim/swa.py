"""Running weight average for SWA / Adaptive Weight Averaging.

Implements paper Eq. 15:

``w_SWA <- (w_SWA * n_models + w) / (n_models + 1)``

The averaged weights approximate an ensemble of the local minima visited by
the cyclic learning-rate schedule while storing only a single model.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.module import Module


class WeightAverager:
    """Maintain the running average of a module's parameters.

    Parameters
    ----------
    module:
        The module whose ``state_dict`` layout defines the averaged weights.
        The initial average is a copy of the module's current weights when
        ``include_initial`` is true, otherwise the first :meth:`update` call
        seeds the average.
    """

    def __init__(self, module: Module, include_initial: bool = False) -> None:
        self._template_keys = list(module.state_dict().keys())
        self.num_models = 0
        self.average: Optional[Dict[str, np.ndarray]] = None
        if include_initial:
            self.update(module)

    def update(self, module: Module) -> None:
        """Fold the module's current weights into the running average (Eq. 15)."""
        state = module.state_dict()
        if set(state.keys()) != set(self._template_keys):
            raise ValueError("module structure changed between WeightAverager updates")
        if self.average is None:
            self.average = {key: value.copy() for key, value in state.items()}
            self.num_models = 1
            return
        n = self.num_models
        for key, value in state.items():
            self.average[key] = (self.average[key] * n + value) / (n + 1)
        self.num_models = n + 1

    def apply_to(self, module: Module) -> None:
        """Write the averaged weights into ``module``."""
        if self.average is None:
            raise RuntimeError("WeightAverager has no accumulated weights yet")
        module.load_state_dict(self.average)

    def state_dict(self) -> Dict[str, np.ndarray]:
        if self.average is None:
            raise RuntimeError("WeightAverager has no accumulated weights yet")
        return {key: value.copy() for key, value in self.average.items()}
