"""Base optimizer class."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class for gradient-based optimizers.

    Parameters
    ----------
    parameters:
        Iterable of :class:`~repro.nn.Parameter` objects to update.
    lr:
        Learning rate.  Schedulers mutate :attr:`lr` in place.
    weight_decay:
        L2 penalty coefficient added to the gradient (``grad + wd * w``).
        The combined loss of the paper (Eq. 12/14) folds the MC-dropout KL
        term into exactly this decoupled L2 regularizer.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float, weight_decay: float = 0.0):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)
        self.step_count = 0

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def _gradient(self, param: Parameter) -> Optional[np.ndarray]:
        """Gradient of ``param`` including the weight-decay term, or None."""
        if param.grad is None:
            return None
        if self.weight_decay:
            return param.grad + self.weight_decay * param.data
        return param.grad

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm in place; returns the pre-clip norm."""
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += float(np.sum(param.grad ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.parameters:
                if param.grad is not None:
                    param.grad = param.grad * scale
        return norm
