"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """SGD update ``w <- w - lr * (grad + wd * w)`` with classical momentum.

    The original SWA recipe uses SGD; the paper's AWA re-training finds Adam
    more effective (Section IV-C2), and the ablation benchmark compares both.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        for param, velocity in zip(self.parameters, self._velocity):
            grad = self._gradient(param)
            if grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update
