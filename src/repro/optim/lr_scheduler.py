"""Learning-rate schedulers.

:class:`CyclicCosineLR` implements the Adaptive Weight Averaging schedule of
the paper (Eq. 16 and Fig. 5): during *even* re-training epochs the learning
rate decays from ``lr_max`` to ``lr_min`` along a cosine; during *odd* epochs
it is held constant at ``lr_min`` while the model is fine-tuned before its
weights are folded into the running average.
"""

from __future__ import annotations

import math
from typing import List

from repro.optim.optimizer import Optimizer


class LRScheduler:
    """Base class: tracks an optimizer and rewrites its ``lr`` each step."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_step = 0

    def get_lr(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step and apply the new learning rate; returns it."""
        self.last_step += 1
        lr = self.get_lr(self.last_step)
        self.optimizer.lr = lr
        return lr

    def trace(self, num_steps: int) -> List[float]:
        """Return the lr values for steps ``1..num_steps`` without applying them."""
        return [self.get_lr(step) for step in range(1, num_steps + 1)]


class ConstantLR(LRScheduler):
    """Keep the learning rate fixed (useful as a no-op default)."""

    def get_lr(self, step: int) -> float:
        return self.base_lr


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base lr to ``lr_min`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, lr_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        self.total_steps = total_steps
        self.lr_min = lr_min

    def get_lr(self, step: int) -> float:
        progress = min(step, self.total_steps) / self.total_steps
        return self.lr_min + 0.5 * (self.base_lr - self.lr_min) * (1.0 + math.cos(math.pi * progress))


class CyclicCosineLR(LRScheduler):
    """AWA re-training schedule (paper Eq. 16, Fig. 5).

    Parameters
    ----------
    optimizer:
        Optimizer whose learning rate is driven by the schedule.
    lr_max, lr_min:
        Maximum (``lr1``) and minimum (``lr2``) learning rates.
    steps_per_epoch:
        Number of optimizer steps (batches) per epoch, ``n_iteration`` in the
        paper.

    Within an even-indexed epoch (0, 2, 4, ...) the learning rate follows
    ``lr = lr2 + 0.5 (lr1 - lr2)(1 + cos(pi * i / n_iteration))`` where ``i``
    is the iteration index inside the epoch; within an odd-indexed epoch the
    learning rate is held at ``lr2``.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        lr_max: float,
        lr_min: float,
        steps_per_epoch: int,
    ) -> None:
        super().__init__(optimizer)
        if lr_max <= 0 or lr_min <= 0:
            raise ValueError("learning rates must be positive")
        if lr_min > lr_max:
            raise ValueError("lr_min must not exceed lr_max")
        if steps_per_epoch < 1:
            raise ValueError("steps_per_epoch must be >= 1")
        self.lr_max = lr_max
        self.lr_min = lr_min
        self.steps_per_epoch = steps_per_epoch

    def epoch_of(self, step: int) -> int:
        """Epoch index (0-based) containing the 1-based step."""
        return (step - 1) // self.steps_per_epoch

    def get_lr(self, step: int) -> float:
        epoch = self.epoch_of(step)
        iteration = (step - 1) % self.steps_per_epoch
        if epoch % 2 == 0:
            progress = iteration / max(self.steps_per_epoch - 1, 1)
            return self.lr_min + 0.5 * (self.lr_max - self.lr_min) * (1.0 + math.cos(math.pi * progress))
        return self.lr_min
