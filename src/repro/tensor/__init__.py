"""Reverse-mode automatic differentiation substrate built on NumPy.

This package is the deep-learning substrate of the reproduction: the paper's
implementation uses PyTorch, which is unavailable in this environment, so the
same computational graph machinery (tensors, broadcasting-aware gradients,
matmul, reductions, activations) is implemented here from scratch.

The public entry point is :class:`~repro.tensor.tensor.Tensor` plus the
functional helpers re-exported below.  Typical usage::

    from repro.tensor import Tensor

    x = Tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
    y = (x * 2.0 + 1.0).sum()
    y.backward()
    x.grad  # -> array of 2.0s
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional
from repro.tensor.functional import (
    add,
    cat,
    clip,
    exp,
    log,
    matmul,
    maximum,
    mean,
    minimum,
    mul,
    relu,
    sigmoid,
    softmax,
    softplus,
    sqrt,
    stack,
    sum as sum_,
    tanh,
    where,
)
from repro.tensor.gradcheck import gradcheck, numerical_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "add",
    "cat",
    "clip",
    "exp",
    "log",
    "matmul",
    "maximum",
    "mean",
    "minimum",
    "mul",
    "relu",
    "sigmoid",
    "softmax",
    "softplus",
    "sqrt",
    "stack",
    "sum_",
    "tanh",
    "where",
    "gradcheck",
    "numerical_gradient",
]
