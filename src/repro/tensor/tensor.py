"""Core :class:`Tensor` type with reverse-mode automatic differentiation.

The implementation follows the classic tape-based design: every operation
creates a new ``Tensor`` that remembers its parents and a closure computing
the local vector-Jacobian product.  Calling :meth:`Tensor.backward` performs a
topological sort of the recorded graph and accumulates gradients into the
``grad`` attribute of every leaf tensor that has ``requires_grad=True``.

Only the operations required by the DeepSTUQ reproduction are implemented,
but each of them supports full NumPy broadcasting and is validated against
finite differences in ``tests/tensor``.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[float, int, list, tuple, np.ndarray, "Tensor"]

# Grad mode is *thread-local* (like torch): an inference thread inside
# ``no_grad()`` must not disable tape recording for a training loop running
# concurrently on another thread — the streaming subsystem refits replacement
# models in the background while serving threads keep predicting.
_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations are currently being recorded on the tape."""
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling gradient recording (like ``torch.no_grad``).

    The flag is per-thread: entering ``no_grad`` on one thread leaves
    training on other threads (e.g. a drift-triggered background refit)
    recording gradients normally.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after broadcasting.

    Broadcasting may have added leading dimensions and/or stretched axes of
    size one; the adjoint of broadcasting is summation over those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away extra leading dimensions.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were stretched from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray`` of floats.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` for this
        tensor during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 1000  # ensure ndarray.__mul__ defers to Tensor.__rmul__

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ones (valid for scalar outputs).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp(log(x) * y)")
        exponent = float(exponent)
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self.matmul(other)

    # Comparison operators return plain boolean arrays (no gradient flows).
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------ #
    # Elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)
        out_data = self.data * scale

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * scale)

        return Tensor._make(out_data, (self,), backward)

    def softplus(self) -> "Tensor":
        # Numerically stable softplus: log(1 + exp(x)) = max(x, 0) + log1p(exp(-|x|)).
        out_data = np.maximum(self.data, 0.0) + np.log1p(np.exp(-np.abs(self.data)))
        sig = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sig)

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: Optional[float] = None, high: Optional[float] = None) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = np.ones_like(self.data)
        if low is not None:
            mask = mask * (self.data >= low)
        if high is not None:
            mask = mask * (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad_full = grad
            if axis is not None and not keepdims:
                grad_full = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad_full, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / self._axis_count(axis))

    def _axis_count(self, axis) -> int:
        if axis is None:
            return self.data.size
        axes = axis if isinstance(axis, tuple) else (axis,)
        return int(np.prod([self.data.shape[a] for a in axes]))

    def var(self, axis=None, keepdims: bool = False, ddof: int = 0) -> "Tensor":
        """Variance along ``axis`` with ``count - ddof`` in the denominator.

        When ``ddof`` leaves no degrees of freedom (e.g. the sample variance
        of a single Monte-Carlo draw) the result is zero rather than NaN, so
        downstream uncertainty decompositions stay finite.
        """
        count = self._axis_count(axis)
        if count - ddof <= 0:
            return (self * 0.0).sum(axis=axis, keepdims=keepdims)
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).sum(axis=axis, keepdims=keepdims) * (1.0 / (count - ddof))

    def std(self, axis=None, keepdims: bool = False, ddof: int = 0) -> "Tensor":
        """Standard deviation along ``axis``.

        The square root is taken through a NaN-safe node: where the variance
        is exactly zero (constant slices, or no degrees of freedom) both the
        value and the gradient are zero instead of NaN / infinite.
        """
        variance = self.var(axis=axis, keepdims=keepdims, ddof=ddof)
        out_data = np.sqrt(np.maximum(variance.data, 0.0))

        def backward(grad: np.ndarray) -> None:
            safe = np.where(out_data > 0.0, out_data, 1.0)
            variance._accumulate(np.where(out_data > 0.0, grad * 0.5 / safe, 0.0))

        return Tensor._make(out_data, (variance,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad_full = grad
            out_full = out_data
            if axis is not None and not keepdims:
                grad_full = np.expand_dims(grad, axis=axis)
                out_full = np.expand_dims(out_data, axis=axis)
            mask = (self.data == out_full).astype(self.data.dtype)
            # Split gradient evenly between ties to keep the op well-defined.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(grad_full * mask / counts)

        return Tensor._make(out_data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        original_shape = self.data.shape
        out_data = self.data.squeeze(axis=axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def unsqueeze(self, axis: int) -> "Tensor":
        original_shape = self.data.shape
        out_data = np.expand_dims(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def broadcast_to(self, shape: Tuple[int, ...]) -> "Tensor":
        out_data = np.broadcast_to(self.data, shape).copy()

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = np.matmul(self.data, other.data)
        a, b = self.data, other.data

        def backward(grad: np.ndarray) -> None:
            if a.ndim == 1 and b.ndim == 1:
                # inner product
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            a_mat = a if a.ndim > 1 else a.reshape(1, -1)
            b_mat = b if b.ndim > 1 else b.reshape(-1, 1)
            grad_mat = grad
            if a.ndim == 1:
                grad_mat = np.expand_dims(grad, -2)
            if b.ndim == 1:
                grad_mat = np.expand_dims(grad_mat, -1)
            grad_a = np.matmul(grad_mat, np.swapaxes(b_mat, -1, -2))
            grad_b = np.matmul(np.swapaxes(a_mat, -1, -2), grad_mat)
            if a.ndim == 1:
                grad_a = grad_a.reshape(a.shape) if grad_a.size == a.size else _unbroadcast(
                    grad_a.sum(axis=-2), a.shape
                )
            else:
                grad_a = _unbroadcast(grad_a, a.shape)
            if b.ndim == 1:
                grad_b = grad_b.reshape(b.shape) if grad_b.size == b.size else _unbroadcast(
                    grad_b.sum(axis=-1), b.shape
                )
            else:
                grad_b = _unbroadcast(grad_b, b.shape)
            self._accumulate(grad_a)
            other._accumulate(grad_b)

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        rng = rng if rng is not None else np.random.default_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)

    @staticmethod
    def eye(n: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.eye(n), requires_grad=requires_grad)
