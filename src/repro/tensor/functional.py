"""Functional interface over :class:`repro.tensor.Tensor`.

These helpers mirror a small subset of ``torch.nn.functional`` / ``torch``
top-level functions.  They exist so layer and loss code can be written in the
familiar functional style while the differentiation machinery lives on the
``Tensor`` class itself.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensor.tensor import Tensor, _unbroadcast

ArrayLike = Union[float, int, list, tuple, np.ndarray, Tensor]


def _as_tensor(value: ArrayLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


# --------------------------------------------------------------------------- #
# Thin wrappers over Tensor methods
# --------------------------------------------------------------------------- #
def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    return _as_tensor(a) + _as_tensor(b)


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    return _as_tensor(a) * _as_tensor(b)


def matmul(a: ArrayLike, b: ArrayLike) -> Tensor:
    return _as_tensor(a).matmul(_as_tensor(b))


def exp(x: ArrayLike) -> Tensor:
    return _as_tensor(x).exp()


def log(x: ArrayLike) -> Tensor:
    return _as_tensor(x).log()


def sqrt(x: ArrayLike) -> Tensor:
    return _as_tensor(x).sqrt()


def tanh(x: ArrayLike) -> Tensor:
    return _as_tensor(x).tanh()


def sigmoid(x: ArrayLike) -> Tensor:
    return _as_tensor(x).sigmoid()


def relu(x: ArrayLike) -> Tensor:
    return _as_tensor(x).relu()


def leaky_relu(x: ArrayLike, negative_slope: float = 0.01) -> Tensor:
    return _as_tensor(x).leaky_relu(negative_slope)


def softplus(x: ArrayLike) -> Tensor:
    return _as_tensor(x).softplus()


def clip(x: ArrayLike, low: Optional[float] = None, high: Optional[float] = None) -> Tensor:
    return _as_tensor(x).clip(low, high)


def sum(x: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return _as_tensor(x).sum(axis=axis, keepdims=keepdims)


def mean(x: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    return _as_tensor(x).mean(axis=axis, keepdims=keepdims)


def abs(x: ArrayLike) -> Tensor:  # noqa: A001
    return _as_tensor(x).abs()


def var(x: ArrayLike, axis=None, keepdims: bool = False, ddof: int = 0) -> Tensor:
    return _as_tensor(x).var(axis=axis, keepdims=keepdims, ddof=ddof)


def std(x: ArrayLike, axis=None, keepdims: bool = False, ddof: int = 0) -> Tensor:
    return _as_tensor(x).std(axis=axis, keepdims=keepdims, ddof=ddof)


# --------------------------------------------------------------------------- #
# Compound / multi-input operations
# --------------------------------------------------------------------------- #
def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise maximum with subgradient split evenly on ties."""
    a, b = _as_tensor(a), _as_tensor(b)
    out_data = np.maximum(a.data, b.data)
    a_mask = (a.data > b.data).astype(out_data.dtype)
    tie = (a.data == b.data).astype(out_data.dtype) * 0.5

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * (a_mask + tie))
        b._accumulate(grad * (1.0 - a_mask - tie))

    return Tensor._make(out_data, (a, b), backward)


def minimum(a: ArrayLike, b: ArrayLike) -> Tensor:
    return -maximum(-_as_tensor(a), -_as_tensor(b))


def where(condition: Union[np.ndarray, Tensor], a: ArrayLike, b: ArrayLike) -> Tensor:
    """Select elements from ``a`` where ``condition`` is true, else from ``b``."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    cond = cond.astype(bool)
    a, b = _as_tensor(a), _as_tensor(b)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * cond)
        b._accumulate(grad * (~cond))

    return Tensor._make(out_data, (a, b), backward)


def cat(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis."""
    tensors = [_as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [_as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.split(grad, len(tensors), axis=axis)
        for tensor, slab in zip(tensors, slabs):
            tensor._accumulate(np.squeeze(slab, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def softmax(x: ArrayLike, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = _as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: ArrayLike, axis: int = -1) -> Tensor:
    x = _as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout_mask(
    shape: Tuple[int, ...], rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample an inverted-dropout mask (scaled by ``1 / keep_prob``)."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = 1.0 - rate
    return (rng.random(shape) < keep).astype(np.float64) / keep


def gaussian_nll(
    mean: ArrayLike, log_var: ArrayLike, target: ArrayLike, reduce: bool = True
) -> Tensor:
    """Heteroscedastic Gaussian negative log-likelihood (paper Eq. 8, negated).

    ``0.5 * (log sigma^2 + (y - mu)^2 / sigma^2)`` up to the additive
    ``0.5 log(2 pi)`` constant, which does not affect optimization but is
    included so the value matches the MNLL metric definition.
    """
    mean, log_var, target = _as_tensor(mean), _as_tensor(log_var), _as_tensor(target)
    inv_var = (-log_var).exp()
    nll = 0.5 * (log_var + (target - mean) * (target - mean) * inv_var) + 0.5 * float(
        np.log(2.0 * np.pi)
    )
    return nll.mean() if reduce else nll


def l1_loss(prediction: ArrayLike, target: ArrayLike, reduce: bool = True) -> Tensor:
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    loss = (prediction - target).abs()
    return loss.mean() if reduce else loss


def mse_loss(prediction: ArrayLike, target: ArrayLike, reduce: bool = True) -> Tensor:
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    diff = prediction - target
    loss = diff * diff
    return loss.mean() if reduce else loss


def huber_loss(prediction: ArrayLike, target: ArrayLike, delta: float = 1.0) -> Tensor:
    """Huber loss used by several point-prediction baselines."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = 0.5 * diff * diff
    linear = delta * abs_diff - 0.5 * delta * delta
    return where(abs_diff.data <= delta, quadratic, linear).mean()


def pinball_loss(prediction: ArrayLike, target: ArrayLike, quantile: float) -> Tensor:
    """Quantile (pinball) loss for quantile-regression baselines."""
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    diff = target - prediction
    return maximum(quantile * diff, (quantile - 1.0) * diff).mean()
