"""Finite-difference gradient checking utilities.

Every differentiable operation and layer in the reproduction is validated
against central finite differences using :func:`gradcheck`.  This is the
primary correctness guarantee for the from-scratch autodiff substrate.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of ``func`` w.r.t. ``inputs[index]``.

    ``func`` must return a scalar Tensor.  The input tensors are perturbed
    in place (and restored) one element at a time.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func(*inputs).item()
        flat[i] = original - eps
        minus = func(*inputs).item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Check analytic gradients of ``func`` against finite differences.

    Parameters
    ----------
    func:
        Callable mapping the input tensors to a scalar Tensor.
    inputs:
        Tensors to differentiate with respect to; each must have
        ``requires_grad=True``.

    Returns
    -------
    bool
        ``True`` when all analytic gradients match the numerical ones within
        the given tolerances; raises ``AssertionError`` otherwise so pytest
        failures carry the offending values.
    """
    for tensor in inputs:
        if not tensor.requires_grad:
            raise ValueError("all gradcheck inputs must require grad")
        tensor.zero_grad()

    output = func(*inputs)
    if output.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    output.backward()

    for index, tensor in enumerate(inputs):
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, inputs, index, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            max_err = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch for input {index}: max abs error {max_err:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
