"""DCRNN — Diffusion Convolutional Recurrent Neural Network (Li et al., 2018).

A GRU whose linear maps are replaced by bidirectional diffusion convolutions
over the (fixed) road-network adjacency, followed by a per-node projection of
the final hidden state onto the forecast horizon.  The original paper uses a
sequence-to-sequence decoder with scheduled sampling; projecting the encoder
state is the standard simplification used when the focus is on comparing
spatial blocks (and is how the AGCRN reference code evaluates DCRNN-style
cells).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.graph.adjacency import diffusion_supports
from repro.models.base import ForecastModel
from repro.nn.module import Module
from repro.tensor import Tensor
from repro.tensor import functional as F


class DCGRUCell(Module):
    """GRU cell with diffusion-convolution gates."""

    def __init__(
        self,
        num_nodes: int,
        input_dim: int,
        hidden_dim: int,
        adjacency: np.ndarray,
        max_diffusion_step: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        supports = diffusion_supports(adjacency)
        self.num_nodes = num_nodes
        self.hidden_dim = hidden_dim
        self.gate_conv = nn.DiffusionConv(
            input_dim + hidden_dim, 2 * hidden_dim, supports, max_step=max_diffusion_step, rng=rng
        )
        self.candidate_conv = nn.DiffusionConv(
            input_dim + hidden_dim, hidden_dim, supports, max_step=max_diffusion_step, rng=rng
        )

    def init_hidden(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.num_nodes, self.hidden_dim)))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        combined = F.cat([x, hidden], axis=-1)
        gates = self.gate_conv(combined).sigmoid()
        update = gates[:, :, : self.hidden_dim]
        reset = gates[:, :, self.hidden_dim :]
        candidate = self.candidate_conv(F.cat([x, reset * hidden], axis=-1)).tanh()
        return update * hidden + (1.0 - update) * candidate


class DCRNN(ForecastModel):
    """Diffusion-convolution recurrent forecaster over a fixed road graph."""

    requires_adjacency = True

    def __init__(
        self,
        num_nodes: int,
        adjacency: np.ndarray,
        history: int = 12,
        horizon: int = 12,
        hidden_dim: int = 32,
        max_diffusion_step: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_nodes, history, horizon)
        rng = rng if rng is not None else np.random.default_rng()
        self.cell = DCGRUCell(
            num_nodes, 1, hidden_dim, adjacency, max_diffusion_step=max_diffusion_step, rng=rng
        )
        self.projection = nn.Linear(hidden_dim, horizon, rng=rng)

    def forward(self, x) -> Tensor:
        x = self._validate_input(x)
        signal = x.unsqueeze(-1)
        state = self.cell.init_hidden(x.shape[0])
        for step in range(self.history):
            state = self.cell(signal[:, step, :, :], state)
        return self.projection(state).transpose(0, 2, 1)
