"""Common interface for traffic forecasting models."""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor, no_grad


class ForecastModel(Module):
    """Base class for models mapping a history window to a forecast window.

    Sub-classes implement :meth:`forward` taking a batch of histories with
    shape ``(batch, history, num_nodes)`` and returning either a Tensor of
    shape ``(batch, horizon, num_nodes)`` (deterministic models) or a dict of
    named output heads with that shape (probabilistic models, e.g. ``mean``
    and ``log_var``).

    The class attribute ``requires_adjacency`` declares whether the
    constructor needs a dense road-network adjacency matrix; the backbone
    registry (:mod:`repro.models.registry`) consults it when building models
    from declarative specs.
    """

    #: Whether the constructor takes a dense adjacency matrix as its second argument.
    requires_adjacency: bool = False

    def __init__(self, num_nodes: int, history: int, horizon: int) -> None:
        super().__init__()
        if num_nodes < 1 or history < 1 or horizon < 1:
            raise ValueError("num_nodes, history and horizon must be >= 1")
        self.num_nodes = num_nodes
        self.history = history
        self.horizon = horizon

    # ------------------------------------------------------------------ #
    def _validate_input(self, inputs: Union[np.ndarray, Tensor]) -> Tensor:
        tensor = inputs if isinstance(inputs, Tensor) else Tensor(np.asarray(inputs, dtype=np.float64))
        if tensor.ndim != 3:
            raise ValueError(
                f"expected input of shape (batch, history, num_nodes), got {tensor.shape}"
            )
        if tensor.shape[1] != self.history or tensor.shape[2] != self.num_nodes:
            raise ValueError(
                f"expected (*, {self.history}, {self.num_nodes}), got {tensor.shape}"
            )
        return tensor

    def predict(self, inputs: Union[np.ndarray, Tensor]) -> np.ndarray:
        """Deterministic point forecast as a NumPy array (eval mode, no grad).

        For probabilistic models the ``mean`` head is returned.
        """
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                output = self.forward(self._validate_input(inputs))
        finally:
            if was_training:
                self.train()
        if isinstance(output, dict):
            output = output["mean"]
        return output.numpy()

    @staticmethod
    def output_to_dict(output: Union[Tensor, Dict[str, Tensor]]) -> Dict[str, Tensor]:
        """Normalize a model output to the dict form with a ``mean`` entry."""
        if isinstance(output, dict):
            return output
        return {"mean": output}
