"""Naive reference forecasters used for sanity checks.

These have no trainable parameters: any learned model in the benchmark suite
should comfortably beat them, which the integration tests assert.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import ForecastModel
from repro.tensor import Tensor


class LastValue(ForecastModel):
    """Repeat the last observed value of each sensor over the whole horizon."""

    def forward(self, x) -> Tensor:
        x = self._validate_input(x)
        last = x[:, self.history - 1 : self.history, :]
        return last.broadcast_to((x.shape[0], self.horizon, self.num_nodes))


class HistoricalAverage(ForecastModel):
    """Forecast the mean of the history window for every horizon step."""

    def forward(self, x) -> Tensor:
        x = self._validate_input(x)
        mean = x.mean(axis=1, keepdims=True)
        return mean.broadcast_to((x.shape[0], self.horizon, self.num_nodes))
