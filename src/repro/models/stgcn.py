"""ST-GCN — Spatio-Temporal Graph Convolutional Network (Yu et al., IJCAI 2018).

The "sandwich" ST-Conv block: gated temporal convolution, Chebyshev graph
convolution, gated temporal convolution, followed by a final temporal
aggregation and per-node projection to the forecast horizon.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.graph.adjacency import chebyshev_polynomials
from repro.models.base import ForecastModel
from repro.nn.module import Module
from repro.tensor import Tensor


class _STConvBlock(Module):
    """Temporal-spatial-temporal convolution block."""

    def __init__(
        self,
        in_channels: int,
        spatial_channels: int,
        out_channels: int,
        supports,
        kernel_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.temporal1 = nn.GatedTemporalConv(in_channels, spatial_channels, kernel_size, rng=rng)
        self.spatial = nn.ChebConv(spatial_channels, spatial_channels, supports, rng=rng)
        self.temporal2 = nn.GatedTemporalConv(spatial_channels, out_channels, kernel_size, rng=rng)
        self.norm = nn.LayerNorm(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        # x: (B, T, N, C)
        out = self.temporal1(x)
        batch, steps, nodes, channels = out.shape
        flattened = out.reshape(batch * steps, nodes, channels)
        out = self.spatial(flattened).relu().reshape(batch, steps, nodes, channels)
        out = self.temporal2(out)
        return self.norm(out)


class STGCN(ForecastModel):
    """Two ST-Conv blocks followed by a temporal-collapse output layer."""

    requires_adjacency = True

    def __init__(
        self,
        num_nodes: int,
        adjacency: np.ndarray,
        history: int = 12,
        horizon: int = 12,
        hidden_channels: int = 16,
        cheb_order: int = 2,
        kernel_size: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_nodes, history, horizon)
        rng = rng if rng is not None else np.random.default_rng()
        supports = chebyshev_polynomials(adjacency, order=cheb_order)
        self.block1 = _STConvBlock(1, hidden_channels, hidden_channels, supports, kernel_size, rng=rng)
        self.block2 = _STConvBlock(
            hidden_channels, hidden_channels, hidden_channels, supports, kernel_size, rng=rng
        )
        self.output = nn.Linear(history * hidden_channels, horizon, rng=rng)

    def forward(self, x) -> Tensor:
        x = self._validate_input(x)
        signal = x.unsqueeze(-1)  # (B, T, N, 1)
        out = self.block2(self.block1(signal))  # (B, T, N, C)
        batch, steps, nodes, channels = out.shape
        collapsed = out.transpose(0, 2, 1, 3).reshape(batch, nodes, steps * channels)
        return self.output(collapsed).transpose(0, 2, 1)
