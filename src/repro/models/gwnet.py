"""GraphWaveNet (Wu et al., IJCAI 2019).

Stacked gated dilated causal convolutions interleaved with graph convolutions
over both the fixed road-network supports and a *self-adaptive* adjacency
learned from node embeddings, with skip connections collected into the output
layer.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import nn
from repro.graph.adjacency import diffusion_supports
from repro.models.base import ForecastModel
from repro.nn.module import Module, Parameter
from repro.nn import init
from repro.tensor import Tensor
from repro.tensor import functional as F


class _SelfAdaptiveAdjacency(Module):
    """``softmax(ReLU(E1 E2^T))`` with two independent embedding matrices."""

    def __init__(self, num_nodes: int, embed_dim: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.source = Parameter(init.normal((num_nodes, embed_dim), std=0.1, rng=rng))
        self.target = Parameter(init.normal((num_nodes, embed_dim), std=0.1, rng=rng))

    def forward(self) -> Tensor:
        return F.softmax(self.source.matmul(self.target.transpose()).relu(), axis=-1)


class _GWNetLayer(Module):
    """One GraphWaveNet layer: gated dilated TCN + graph convolution + residual."""

    def __init__(
        self,
        channels: int,
        supports,
        dilation: int,
        kernel_size: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.temporal = nn.GatedTemporalConv(channels, channels, kernel_size, dilation=dilation, rng=rng)
        self.graph_conv = nn.ChebConv(channels, channels, supports, rng=rng)
        self.skip = nn.Linear(channels, channels, rng=rng)

    def forward(self, x: Tensor, adaptive_support: Tensor) -> tuple:
        out = self.temporal(x)
        batch, steps, nodes, channels = out.shape
        flattened = out.reshape(batch * steps, nodes, channels)
        spatial = self.graph_conv(flattened) + adaptive_support.matmul(flattened)
        spatial = spatial.relu().reshape(batch, steps, nodes, channels)
        skip = self.skip(out)
        return spatial + x, skip


class GraphWaveNet(ForecastModel):
    """GraphWaveNet with a self-adaptive adjacency and skip-connection head."""

    requires_adjacency = True

    def __init__(
        self,
        num_nodes: int,
        adjacency: np.ndarray,
        history: int = 12,
        horizon: int = 12,
        channels: int = 16,
        num_layers: int = 3,
        embed_dim: int = 8,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_nodes, history, horizon)
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        supports = diffusion_supports(adjacency)
        self.input_proj = nn.Linear(1, channels, rng=rng)
        self.adaptive = _SelfAdaptiveAdjacency(num_nodes, embed_dim, rng=rng)
        self.layers = nn.ModuleList(
            [_GWNetLayer(channels, supports, dilation=2 ** i, rng=rng) for i in range(num_layers)]
        )
        self.output1 = nn.Linear(channels, channels, rng=rng)
        self.output2 = nn.Linear(history * channels, horizon, rng=rng)

    def forward(self, x) -> Tensor:
        x = self._validate_input(x)
        signal = self.input_proj(x.unsqueeze(-1))  # (B, T, N, C)
        adaptive_support = self.adaptive()
        skips: List[Tensor] = []
        out = signal
        for layer in self.layers:
            out, skip = layer(out, adaptive_support)
            skips.append(skip)
        total_skip = skips[0]
        for skip in skips[1:]:
            total_skip = total_skip + skip
        activated = self.output1(total_skip.relu()).relu()  # (B, T, N, C)
        batch, steps, nodes, channels = activated.shape
        collapsed = activated.transpose(0, 2, 1, 3).reshape(batch, nodes, steps * channels)
        return self.output2(collapsed).transpose(0, 2, 1)
