"""ASTGCN — Attention-based Spatial-Temporal GCN (Guo et al., AAAI 2019).

Spatial attention re-weights the Chebyshev graph convolution supports and
temporal attention re-weights the time axis before a temporal convolution;
a per-node projection of the flattened representation produces the forecast.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.graph.adjacency import chebyshev_polynomials
from repro.models.base import ForecastModel
from repro.tensor import Tensor


class ASTGCN(ForecastModel):
    """Single ASTGCN block (attention + graph conv + temporal conv) + head."""

    requires_adjacency = True

    def __init__(
        self,
        num_nodes: int,
        adjacency: np.ndarray,
        history: int = 12,
        horizon: int = 12,
        hidden_channels: int = 16,
        cheb_order: int = 2,
        kernel_size: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_nodes, history, horizon)
        rng = rng if rng is not None else np.random.default_rng()
        self.supports = [Tensor(s) for s in chebyshev_polynomials(adjacency, order=cheb_order)]
        self.spatial_attention = nn.SpatialAttention(history, 1, rng=rng)
        self.temporal_attention = nn.TemporalAttention(num_nodes, 1, rng=rng)
        self.graph_conv = nn.ChebConv(1, hidden_channels, [s.numpy() for s in self.supports], rng=rng)
        self.temporal_conv = nn.CausalConv1d(hidden_channels, hidden_channels, kernel_size, rng=rng)
        self.output = nn.Linear(history * hidden_channels, horizon, rng=rng)

    def forward(self, x) -> Tensor:
        x = self._validate_input(x)
        signal = x.unsqueeze(-1)  # (B, T, N, 1)

        # Temporal attention: re-weight the history axis.
        temporal_scores = self.temporal_attention(signal)  # (B, T, T)
        batch, steps, nodes, channels = signal.shape
        flat_time = signal.reshape(batch, steps, nodes * channels)
        attended_time = temporal_scores.matmul(flat_time).reshape(batch, steps, nodes, channels)

        # Spatial attention: re-weight node interactions for the graph conv.
        spatial_scores = self.spatial_attention(attended_time)  # (B, N, N)
        flattened = attended_time.reshape(batch * steps, nodes, channels)
        convolved = self.graph_conv(flattened).relu().reshape(batch, steps, nodes, -1)
        # Apply spatial attention on the convolved signal (B, T, N, C).
        convolved = spatial_scores.unsqueeze(1).matmul(convolved)

        out = self.temporal_conv(convolved).relu()
        collapsed = out.transpose(0, 2, 1, 3).reshape(batch, nodes, -1)
        return self.output(collapsed).transpose(0, 2, 1)
