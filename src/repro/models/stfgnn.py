"""STFGNN — Spatial-Temporal Fusion Graph Neural Network (Li & Zhu, AAAI 2021).

Combines (i) a *fusion graph* that augments the physical road graph with a
data-driven temporal-similarity graph, processed by graph convolutions, and
(ii) a gated dilated CNN branch that captures long-range temporal patterns;
the two branches are fused before the output projection.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.graph.adjacency import gcn_support
from repro.models.base import ForecastModel
from repro.tensor import Tensor
from repro.tensor import functional as F


def temporal_similarity_graph(values: np.ndarray, top_k: int = 4) -> np.ndarray:
    """Data-driven graph connecting sensors with similar historical profiles.

    This is a lightweight stand-in for STFGNN's DTW-based temporal graph: the
    (absolute) Pearson correlation between sensor series defines similarity,
    and each sensor keeps its ``top_k`` most similar peers.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError("values must be (num_steps, num_nodes)")
    num_nodes = values.shape[1]
    centered = values - values.mean(axis=0, keepdims=True)
    std = centered.std(axis=0, keepdims=True)
    std[std == 0] = 1.0
    corr = np.abs((centered / std).T @ (centered / std) / values.shape[0])
    np.fill_diagonal(corr, 0.0)
    graph = np.zeros_like(corr)
    k = min(top_k, num_nodes - 1)
    for node in range(num_nodes):
        neighbours = np.argsort(corr[node])[-k:]
        graph[node, neighbours] = 1.0
        graph[neighbours, node] = 1.0
    return graph


class STFGNN(ForecastModel):
    """Fusion-graph convolutions + a gated dilated CNN branch."""

    requires_adjacency = True

    def __init__(
        self,
        num_nodes: int,
        adjacency: np.ndarray,
        history: int = 12,
        horizon: int = 12,
        hidden_channels: int = 16,
        temporal_graph: Optional[np.ndarray] = None,
        kernel_size: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_nodes, history, horizon)
        rng = rng if rng is not None else np.random.default_rng()
        adjacency = np.asarray(adjacency, dtype=np.float64)
        fusion = adjacency.copy()
        if temporal_graph is not None:
            temporal_graph = np.asarray(temporal_graph, dtype=np.float64)
            if temporal_graph.shape != adjacency.shape:
                raise ValueError("temporal_graph must have the same shape as adjacency")
            fusion = np.clip(fusion + temporal_graph, 0.0, 1.0)
        self.spatial_conv1 = nn.GCNLayer(1, hidden_channels, gcn_support(fusion), activation="relu", rng=rng)
        self.spatial_conv2 = nn.GCNLayer(
            hidden_channels, hidden_channels, gcn_support(fusion), activation="relu", rng=rng
        )
        self.temporal_branch = nn.Sequential(
            nn.GatedTemporalConv(1, hidden_channels, kernel_size, dilation=1, rng=rng),
            nn.GatedTemporalConv(hidden_channels, hidden_channels, kernel_size, dilation=2, rng=rng),
        )
        self.output = nn.Linear(2 * history * hidden_channels, horizon, rng=rng)

    def forward(self, x) -> Tensor:
        x = self._validate_input(x)
        batch = x.shape[0]
        signal = x.unsqueeze(-1)  # (B, T, N, 1)

        # Spatial branch: fusion-graph convolution applied per time step.
        flattened = signal.reshape(batch * self.history, self.num_nodes, 1)
        spatial = self.spatial_conv2(self.spatial_conv1(flattened))
        spatial = spatial.reshape(batch, self.history, self.num_nodes, -1)

        # Temporal branch: gated dilated CNN over the time axis.
        temporal = self.temporal_branch(signal)

        fused = F.cat([spatial, temporal], axis=-1)  # (B, T, N, 2C)
        collapsed = fused.transpose(0, 2, 1, 3).reshape(batch, self.num_nodes, -1)
        return self.output(collapsed).transpose(0, 2, 1)
