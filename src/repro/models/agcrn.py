"""AGCRN — the base spatio-temporal architecture of DeepSTUQ.

Adaptive Graph Convolutional Recurrent Network (Bai et al., NeurIPS 2020),
exactly as described in Section IV-A/IV-B of the DeepSTUQ paper:

* the adjacency matrix is *learned* from node embeddings
  (``softmax(ReLU(E E^T))``, Eq. 4);
* the GRU gates replace their linear maps by the node-adaptive graph
  convolution :class:`~repro.nn.AVWGCN` (Eqs. 5-6);
* dropout is applied to the graph-convolution output inside the encoder
  (Eq. 13) and to the decoder input, so Monte-Carlo dropout sampling is
  possible at inference time;
* the decoder consists of *independent* output heads (1x1 convolutions
  realized as per-node linear projections of the final hidden state) —
  a ``mean`` head and, for probabilistic variants, a ``log_var`` head
  (Section IV-C1).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro import nn
from repro.models.base import ForecastModel
from repro.nn.module import Module
from repro.tensor import Tensor
from repro.tensor import functional as F


class AGCRNCell(Module):
    """GRU cell whose gates are adaptive graph convolutions (paper Eq. 6).

    State and input are node signals of shape ``(batch, num_nodes, dim)``.
    """

    def __init__(
        self,
        num_nodes: int,
        input_dim: int,
        hidden_dim: int,
        embed_dim: int,
        cheb_k: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.num_nodes = num_nodes
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.gate_conv = nn.AVWGCN(
            input_dim + hidden_dim, 2 * hidden_dim, embed_dim, cheb_k=cheb_k, rng=rng
        )
        self.candidate_conv = nn.AVWGCN(
            input_dim + hidden_dim, hidden_dim, embed_dim, cheb_k=cheb_k, rng=rng
        )

    def init_hidden(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.num_nodes, self.hidden_dim)))

    def forward(
        self,
        x: Tensor,
        hidden: Tensor,
        adjacency: Tensor,
        embeddings: Tensor,
        dropout: Optional[nn.Dropout] = None,
    ) -> Tensor:
        combined = F.cat([x, hidden], axis=-1)
        gates = self.gate_conv(combined, adjacency, embeddings)
        if dropout is not None:
            gates = dropout(gates)
        gates = gates.sigmoid()
        update = gates[:, :, : self.hidden_dim]
        reset = gates[:, :, self.hidden_dim :]
        candidate_input = F.cat([x, reset * hidden], axis=-1)
        candidate = self.candidate_conv(candidate_input, adjacency, embeddings)
        if dropout is not None:
            candidate = dropout(candidate)
        candidate = candidate.tanh()
        return update * hidden + (1.0 - update) * candidate


class AGCRN(ForecastModel):
    """Adaptive Graph Convolutional Recurrent Network with configurable heads.

    Parameters
    ----------
    num_nodes, history, horizon:
        Problem dimensions (Th = horizon = 12 in the paper).
    hidden_dim:
        GRU hidden width per node.
    embed_dim:
        Node-embedding dimension ``d`` of the adaptive adjacency (``d << N``).
    cheb_k:
        Graph-propagation order of the AVWGCN layers.
    num_layers:
        Number of stacked AGCRN cells in the encoder.
    encoder_dropout:
        Dropout rate applied to graph-convolution outputs inside the encoder
        (paper: 0.1 for the large networks, 0.05 for PEMS08).
    decoder_dropout:
        Dropout rate before the decoder heads (paper: 0.2).
    heads:
        Names of the decoder output heads.  ``("mean",)`` gives a point
        model; ``("mean", "log_var")`` the heteroscedastic model used by
        MVE / Combined / DeepSTUQ; ``("lower", "mean", "upper")`` the
        quantile-regression baseline.
    """

    def __init__(
        self,
        num_nodes: int,
        history: int = 12,
        horizon: int = 12,
        hidden_dim: int = 32,
        embed_dim: int = 8,
        cheb_k: int = 2,
        num_layers: int = 1,
        encoder_dropout: float = 0.1,
        decoder_dropout: float = 0.2,
        heads: Sequence[str] = ("mean", "log_var"),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_nodes, history, horizon)
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if not heads or len(set(heads)) != len(heads):
            raise ValueError("heads must be a non-empty sequence of unique names")
        rng = rng if rng is not None else np.random.default_rng()
        self.hidden_dim = hidden_dim
        self.embed_dim = embed_dim
        self.num_layers = num_layers
        self.head_names: Tuple[str, ...] = tuple(heads)

        self.adaptive_adjacency = nn.AdaptiveAdjacency(num_nodes, embed_dim, rng=rng)
        cells = []
        for layer in range(num_layers):
            input_dim = 1 if layer == 0 else hidden_dim
            cells.append(
                AGCRNCell(num_nodes, input_dim, hidden_dim, embed_dim, cheb_k=cheb_k, rng=rng)
            )
        self.cells = nn.ModuleList(cells)
        self.encoder_dropout = nn.Dropout(encoder_dropout, rng=rng)
        self.decoder_dropout = nn.Dropout(decoder_dropout, rng=rng)
        self.heads = nn.ModuleList(
            [nn.Linear(hidden_dim, horizon, rng=rng) for _ in self.head_names]
        )

    # ------------------------------------------------------------------ #
    def encode(self, x: Tensor) -> Tensor:
        """Run the recurrent encoder; returns the final hidden state (B, N, H)."""
        batch_size = x.shape[0]
        adjacency = self.adaptive_adjacency()
        embeddings = self.adaptive_adjacency.embeddings
        # (B, T, N) -> (B, T, N, 1)
        signal = x.unsqueeze(-1) if x.ndim == 3 else x
        states = [cell.init_hidden(batch_size) for cell in self.cells]
        for step in range(self.history):
            layer_input = signal[:, step, :, :]
            for index, cell in enumerate(self.cells):
                states[index] = cell(
                    layer_input, states[index], adjacency, embeddings, dropout=self.encoder_dropout
                )
                layer_input = states[index]
        return states[-1]

    def forward(self, x: Union[Tensor, np.ndarray]) -> Union[Tensor, Dict[str, Tensor]]:
        """Forecast all heads.

        Returns a Tensor ``(batch, horizon, num_nodes)`` when a single head is
        configured, otherwise a dict mapping head names to such tensors.
        """
        x = self._validate_input(x)
        hidden = self.encode(x)
        decoded = self.decoder_dropout(hidden)
        outputs: Dict[str, Tensor] = {}
        for name, head in zip(self.head_names, self.heads):
            # (B, N, horizon) -> (B, horizon, N)
            outputs[name] = head(decoded).transpose(0, 2, 1)
        if len(self.head_names) == 1:
            return outputs[self.head_names[0]]
        return outputs

    # ------------------------------------------------------------------ #
    def set_mc_dropout(self, enabled: bool) -> int:
        """Toggle Monte-Carlo dropout on every dropout layer; returns the count."""
        from repro.nn.dropout import set_mc_dropout

        return set_mc_dropout(self, enabled)

    def reseed_dropout(self, rng: np.random.Generator) -> None:
        """Reseed all dropout layers (reproducible MC sampling)."""
        for module in self.modules():
            if isinstance(module, nn.Dropout):
                module.reseed(rng)

    def learned_adjacency(self) -> np.ndarray:
        """The current learned propagation matrix (for inspection/plots)."""
        return self.adaptive_adjacency().numpy()
