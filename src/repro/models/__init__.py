"""Spatio-temporal traffic forecasting models.

:class:`AGCRN` is the base architecture of DeepSTUQ (adaptive graph
convolution inside a GRU, with independent mean / log-variance decoder
heads).  The remaining classes are the point-prediction baselines of the
paper's Table III, re-implemented on the NumPy substrate:

========  =============================================================
Model     Key idea (paper reference)
========  =============================================================
DCRNN     diffusion convolution + recurrent seq2seq (Li et al., 2018)
STGCN     gated temporal conv + Chebyshev graph conv (Yu et al., 2018)
GWN       GraphWaveNet: dilated causal conv + self-adaptive adjacency
ASTGCN    spatial/temporal attention + graph conv (Guo et al., 2019)
STSGCN    localized spatial-temporal synchronous graph conv
STFGNN    spatial-temporal fusion graph + gated dilated CNN
AGCRN     adaptive graph conv recurrent network (Bai et al., 2020)
========  =============================================================

Naive references (:class:`HistoricalAverage`, :class:`LastValue`) are also
included for sanity checks.
"""

from repro.models.base import ForecastModel
from repro.models.heads import HeadAdapter
from repro.models.agcrn import AGCRN, AGCRNCell
from repro.models.dcrnn import DCRNN, DCGRUCell
from repro.models.stgcn import STGCN
from repro.models.gwnet import GraphWaveNet
from repro.models.astgcn import ASTGCN
from repro.models.stsgcn import STSGCN
from repro.models.stfgnn import STFGNN
from repro.models.naive import HistoricalAverage, LastValue
from repro.models.registry import (
    BACKBONE_INFO,
    BackboneInfo,
    available_backbones,
    backbone_info,
    create_backbone,
)

__all__ = [
    "ForecastModel",
    "HeadAdapter",
    "BACKBONE_INFO",
    "BackboneInfo",
    "available_backbones",
    "backbone_info",
    "create_backbone",
    "AGCRN",
    "AGCRNCell",
    "DCRNN",
    "DCGRUCell",
    "STGCN",
    "GraphWaveNet",
    "ASTGCN",
    "STSGCN",
    "STFGNN",
    "HistoricalAverage",
    "LastValue",
]
