"""Head adapter: named probabilistic output heads for point-only backbones.

Only :class:`~repro.models.agcrn.AGCRN` constructs named decoder heads
natively; every other backbone in :mod:`repro.models` maps a history window
to a single point forecast.  The UQ methods, however, are written against the
head dict convention of :class:`~repro.models.base.ForecastModel` (``mean``
plus, depending on the method, ``log_var`` or quantile heads).

:class:`HeadAdapter` closes that gap: it wraps a point backbone, keeps the
backbone's forecast as the ``mean`` head unchanged, and derives every extra
head with a learnable per-node projection along the horizon axis (a 1x1
convolution over horizon steps, mirroring how AGCRN realizes its decoder
heads).  A dropout layer in front of the extra-head projections keeps the
adapter compatible with Monte-Carlo sampling even when the wrapped backbone
itself has no stochastic layers — the sampled means then coincide (zero
epistemic spread), which honestly reflects the deterministic backbone.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro import nn
from repro.models.base import ForecastModel
from repro.tensor import Tensor


class HeadAdapter(ForecastModel):
    """Wrap a point-forecast backbone with named output heads.

    Parameters
    ----------
    backbone:
        A fitted-or-fresh :class:`ForecastModel` whose forward returns a
        single ``(batch, horizon, num_nodes)`` tensor (or a dict with a
        ``mean`` entry, which is reduced to its mean).
    heads:
        Requested head names; must contain ``"mean"``.  The mean head is the
        backbone output itself; every other name gets a learnable
        ``Linear(horizon, horizon)`` projection of the (dropout-masked)
        backbone forecast.
    dropout:
        Rate of the dropout applied to the features feeding the extra heads.
    """

    requires_adjacency = False

    def __init__(
        self,
        backbone: ForecastModel,
        heads: Sequence[str],
        dropout: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(backbone.num_nodes, backbone.history, backbone.horizon)
        heads = tuple(heads)
        if not heads or len(set(heads)) != len(heads):
            raise ValueError("heads must be a non-empty sequence of unique names")
        if "mean" not in heads:
            raise ValueError(f"HeadAdapter heads must include 'mean', got {heads}")
        rng = rng if rng is not None else np.random.default_rng()
        self.backbone = backbone
        self.head_names: Tuple[str, ...] = heads
        self.extra_names: Tuple[str, ...] = tuple(name for name in heads if name != "mean")
        self.head_dropout = nn.Dropout(dropout, rng=rng)
        self.extra_heads = nn.ModuleList(
            [nn.Linear(self.horizon, self.horizon, rng=rng) for _ in self.extra_names]
        )

    def forward(self, x: Union[Tensor, np.ndarray]) -> Union[Tensor, Dict[str, Tensor]]:
        base = self.backbone(x)
        mean = base["mean"] if isinstance(base, dict) else base  # (B, H, N)
        if not self.extra_names:
            return mean
        outputs: Dict[str, Tensor] = {"mean": mean}
        # (B, H, N) -> (B, N, H): the projections act along the horizon axis.
        features = self.head_dropout(mean.transpose(0, 2, 1))
        for name, head in zip(self.extra_names, self.extra_heads):
            outputs[name] = head(features).transpose(0, 2, 1)
        return outputs

    def __repr__(self) -> str:
        return (
            f"HeadAdapter(backbone={self.backbone.__class__.__name__}, "
            f"heads={list(self.head_names)})"
        )
