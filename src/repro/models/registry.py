"""Registry of forecasting backbones, parallel to :mod:`repro.uq.registry`.

The paper evaluates every UQ method over "the same base architecture"; this
registry makes the base architecture itself a configuration choice.  Each
entry maps a backbone name to its taxonomy (does it build named output heads
natively? does it need a road-network adjacency?) and to a builder that
normalizes the heterogeneous model constructors behind one call:

``create_backbone(name, num_nodes, config=..., heads=..., adjacency=...)``

* problem dimensions (``history`` / ``horizon``) and — where the model shares
  them — width hyper-parameters are taken from a
  :class:`~repro.core.trainer.TrainingConfig`-shaped object (duck-typed, so
  this module stays import-free of :mod:`repro.core`);
* architecture-specific knobs are forwarded via ``**kwargs``;
* backbones that cannot build named heads natively are wrapped in a
  :class:`~repro.models.heads.HeadAdapter` whenever more than a ``mean`` head
  is requested, so every UQ method works with every backbone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.agcrn import AGCRN
from repro.models.astgcn import ASTGCN
from repro.models.base import ForecastModel
from repro.models.dcrnn import DCRNN
from repro.models.gwnet import GraphWaveNet
from repro.models.heads import HeadAdapter
from repro.models.naive import HistoricalAverage, LastValue
from repro.models.stfgnn import STFGNN
from repro.models.stgcn import STGCN
from repro.models.stsgcn import STSGCN

#: Builder signature: (num_nodes, config, heads, adjacency, rng, **kwargs) -> model.
BackboneBuilder = Callable[..., ForecastModel]


@dataclass(frozen=True)
class BackboneInfo:
    """One registered base architecture."""

    name: str
    builder: BackboneBuilder
    supports_heads: bool
    requires_adjacency: bool
    #: Whether the backbone has trainable parameters (the naive references
    #: do not, so gradient-based UQ methods must reject them up front).
    trainable: bool = True
    description: str = ""


def _dims(config: Optional[Any], **extra: Any) -> Dict[str, Any]:
    """History/horizon (plus ``extra`` config fields) as constructor kwargs."""
    if config is None:
        return {}
    params: Dict[str, Any] = {"history": config.history, "horizon": config.horizon}
    for kwarg, field in extra.items():
        params[kwarg] = getattr(config, field)
    return params


def _build_agcrn(num_nodes, config, heads, adjacency, rng, **kwargs) -> AGCRN:
    params = _dims(
        config,
        hidden_dim="hidden_dim",
        embed_dim="embed_dim",
        cheb_k="cheb_k",
        num_layers="num_layers",
        encoder_dropout="encoder_dropout",
        decoder_dropout="decoder_dropout",
    )
    params.update(kwargs)
    return AGCRN(num_nodes=num_nodes, heads=heads, rng=rng, **params)


def _graph_builder(model_cls: type, **config_fields: str) -> BackboneBuilder:
    """Builder for the point baselines taking ``(num_nodes, adjacency, ...)``."""

    def build(num_nodes, config, heads, adjacency, rng, **kwargs) -> ForecastModel:
        params = _dims(config, **config_fields)
        params.update(kwargs)
        return model_cls(num_nodes, adjacency, rng=rng, **params)

    return build


def _naive_builder(model_cls: type) -> BackboneBuilder:
    def build(num_nodes, config, heads, adjacency, rng, **kwargs) -> ForecastModel:
        params = _dims(config)
        params.update(kwargs)
        return model_cls(num_nodes, **params)

    return build


BACKBONE_INFO: Dict[str, BackboneInfo] = {
    "AGCRN": BackboneInfo(
        "AGCRN", _build_agcrn, supports_heads=True, requires_adjacency=False,
        description="adaptive graph conv recurrent network (paper base model)",
    ),
    "DCRNN": BackboneInfo(
        "DCRNN", _graph_builder(DCRNN, hidden_dim="hidden_dim"),
        supports_heads=False, requires_adjacency=True,
        description="diffusion convolution + recurrent seq2seq",
    ),
    "GWNet": BackboneInfo(
        "GWNet", _graph_builder(GraphWaveNet),
        supports_heads=False, requires_adjacency=True,
        description="GraphWaveNet: dilated causal conv + self-adaptive adjacency",
    ),
    "STGCN": BackboneInfo(
        "STGCN", _graph_builder(STGCN),
        supports_heads=False, requires_adjacency=True,
        description="gated temporal conv + Chebyshev graph conv",
    ),
    "ASTGCN": BackboneInfo(
        "ASTGCN", _graph_builder(ASTGCN),
        supports_heads=False, requires_adjacency=True,
        description="spatial/temporal attention + graph conv",
    ),
    "STSGCN": BackboneInfo(
        "STSGCN", _graph_builder(STSGCN),
        supports_heads=False, requires_adjacency=True,
        description="localized spatial-temporal synchronous graph conv",
    ),
    "STFGNN": BackboneInfo(
        "STFGNN", _graph_builder(STFGNN),
        supports_heads=False, requires_adjacency=True,
        description="spatial-temporal fusion graph + gated dilated CNN",
    ),
    "LastValue": BackboneInfo(
        "LastValue", _naive_builder(LastValue),
        supports_heads=False, requires_adjacency=False, trainable=False,
        description="repeat the last observation (naive reference)",
    ),
    "HistoricalAverage": BackboneInfo(
        "HistoricalAverage", _naive_builder(HistoricalAverage),
        supports_heads=False, requires_adjacency=False, trainable=False,
        description="mean of the history window (naive reference)",
    ),
}

#: Alternate spellings accepted by :func:`backbone_info`.
BACKBONE_ALIASES: Dict[str, str] = {
    "GWN": "GWNet",
    "GraphWaveNet": "GWNet",
}


def available_backbones() -> List[str]:
    """Names of all registered backbones."""
    return list(BACKBONE_INFO)


def backbone_info(name: str) -> BackboneInfo:
    """Lookup of a single backbone's registry entry (aliases resolved)."""
    canonical = BACKBONE_ALIASES.get(name, name)
    if canonical not in BACKBONE_INFO:
        raise KeyError(
            f"unknown backbone {name!r}; available: {available_backbones()}"
        )
    return BACKBONE_INFO[canonical]


def create_backbone(
    name: str,
    num_nodes: int,
    config: Optional[Any] = None,
    heads: Sequence[str] = ("mean",),
    adjacency: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
    head_dropout: Optional[float] = None,
    **kwargs,
) -> ForecastModel:
    """Instantiate a registered backbone with the requested output heads.

    Parameters
    ----------
    name:
        A :data:`BACKBONE_INFO` key (or alias).
    config:
        Optional :class:`~repro.core.trainer.TrainingConfig`-shaped object
        supplying ``history`` / ``horizon`` (and, for AGCRN/DCRNN, the shared
        width fields).  Without it the model's own defaults apply.
    heads:
        Requested output-head names.  Backbones without native head support
        are wrapped in a :class:`HeadAdapter` when more than ``("mean",)`` is
        requested.
    adjacency:
        Dense road-network adjacency, required by the graph-structured
        baselines (see :attr:`BackboneInfo.requires_adjacency`).
    head_dropout:
        Dropout rate of the head adapter (defaults to the config's
        ``decoder_dropout``, or 0.2 without a config).
    kwargs:
        Architecture-specific constructor arguments, forwarded verbatim.
    """
    info = backbone_info(name)
    heads = tuple(heads)
    if not heads:
        raise ValueError("heads must be a non-empty sequence")
    rng = rng if rng is not None else np.random.default_rng()
    if info.requires_adjacency and adjacency is None:
        raise ValueError(
            f"backbone {info.name!r} needs a road-network adjacency matrix; pass "
            "adjacency=... (the Forecaster facade takes it from the dataset's network)"
        )
    if info.supports_heads:
        return info.builder(num_nodes, config, heads, adjacency, rng, **kwargs)
    model = info.builder(num_nodes, config, None, adjacency, rng, **kwargs)
    if heads == ("mean",):
        return model
    if head_dropout is None:
        head_dropout = config.decoder_dropout if config is not None else 0.2
    return HeadAdapter(model, heads, dropout=head_dropout, rng=rng)
