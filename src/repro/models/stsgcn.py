"""STSGCN — Spatial-Temporal Synchronous Graph Convolutional Network
(Song et al., AAAI 2020).

The key idea is a *localized spatial-temporal graph*: three consecutive time
slices are stitched into one big graph of ``3 N`` nodes (each node connected
to itself in the previous/next slice), and an ordinary graph convolution over
that block-adjacency captures spatial and short-range temporal correlations
*synchronously*.  Sliding this module over the history and aggregating (with
max pooling in the original paper; mean here) yields the representation that
is projected onto the forecast horizon.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.graph.adjacency import gcn_support
from repro.models.base import ForecastModel
from repro.tensor import Tensor
from repro.tensor import functional as F


def build_localized_st_adjacency(adjacency: np.ndarray, num_slices: int = 3) -> np.ndarray:
    """Block adjacency of ``num_slices`` copies of the spatial graph.

    Diagonal blocks hold the spatial adjacency; off-diagonal blocks connect
    each sensor to itself in the adjacent time slice.
    """
    if num_slices < 2:
        raise ValueError("num_slices must be >= 2")
    adjacency = np.asarray(adjacency, dtype=np.float64)
    num_nodes = adjacency.shape[0]
    size = num_slices * num_nodes
    localized = np.zeros((size, size))
    identity = np.eye(num_nodes)
    for s in range(num_slices):
        start = s * num_nodes
        localized[start : start + num_nodes, start : start + num_nodes] = adjacency
        if s + 1 < num_slices:
            nxt = (s + 1) * num_nodes
            localized[start : start + num_nodes, nxt : nxt + num_nodes] = identity
            localized[nxt : nxt + num_nodes, start : start + num_nodes] = identity
    return localized


class STSGCN(ForecastModel):
    """Synchronous spatio-temporal graph convolution over sliding 3-slice windows."""

    requires_adjacency = True

    def __init__(
        self,
        num_nodes: int,
        adjacency: np.ndarray,
        history: int = 12,
        horizon: int = 12,
        hidden_channels: int = 16,
        window: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_nodes, history, horizon)
        if window < 2 or window > history:
            raise ValueError("window must be in [2, history]")
        rng = rng if rng is not None else np.random.default_rng()
        self.window = window
        localized = build_localized_st_adjacency(adjacency, num_slices=window)
        self.graph_conv1 = nn.GCNLayer(1, hidden_channels, gcn_support(localized), activation="relu", rng=rng)
        self.graph_conv2 = nn.GCNLayer(
            hidden_channels, hidden_channels, gcn_support(localized), activation="relu", rng=rng
        )
        num_windows = history - window + 1
        self.output = nn.Linear(num_windows * hidden_channels, horizon, rng=rng)

    def forward(self, x) -> Tensor:
        x = self._validate_input(x)
        batch = x.shape[0]
        window_outputs = []
        for start in range(self.history - self.window + 1):
            # (B, window, N) -> localized graph signal (B, window * N, 1)
            piece = x[:, start : start + self.window, :].reshape(batch, self.window * self.num_nodes, 1)
            convolved = self.graph_conv2(self.graph_conv1(piece))  # (B, window*N, C)
            # Aggregate over the time slices of the localized graph (mean pooling).
            per_slice = convolved.reshape(batch, self.window, self.num_nodes, -1)
            window_outputs.append(per_slice.mean(axis=1))  # (B, N, C)
        stacked = F.cat(window_outputs, axis=-1)  # (B, N, num_windows * C)
        return self.output(stacked).transpose(0, 2, 1)
