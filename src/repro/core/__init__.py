"""DeepSTUQ core: the paper's primary contribution.

The unified uncertainty-quantification pipeline consists of

1. the **combined loss** (aleatoric NLL + L1 + weight-decay/KL term,
   Eqs. 8-9, 12, 14) in :mod:`repro.core.losses`;
2. a generic mini-batch **trainer** in :mod:`repro.core.trainer`;
3. **Adaptive Weight Averaging** re-training (Algorithm 1, Eqs. 15-16) in
   :mod:`repro.core.awa`;
4. post-hoc **temperature-scaling calibration** (Eqs. 17-18) in
   :mod:`repro.core.calibration`;
5. **Monte-Carlo inference** and the aleatoric/epistemic decomposition
   (Eqs. 7, 19) in :mod:`repro.core.inference`;
6. the three-stage :class:`~repro.core.pipeline.DeepSTUQPipeline` tying it
   all together.
"""

from repro.core.losses import (
    combined_loss,
    heteroscedastic_gaussian_loss,
    point_l1_loss,
    quantile_loss,
)
from repro.core.trainer import Trainer, TrainingConfig
from repro.core.awa import AWAConfig, AWATrainer
from repro.core.calibration import TemperatureCalibrator
from repro.core.inference import (
    BatchedPredictor,
    PredictionResult,
    deterministic_forecast,
    ensemble_forecast,
    monte_carlo_forecast,
)
from repro.core.pipeline import DeepSTUQConfig, DeepSTUQPipeline

__all__ = [
    "heteroscedastic_gaussian_loss",
    "combined_loss",
    "point_l1_loss",
    "quantile_loss",
    "Trainer",
    "TrainingConfig",
    "AWAConfig",
    "AWATrainer",
    "TemperatureCalibrator",
    "BatchedPredictor",
    "PredictionResult",
    "deterministic_forecast",
    "ensemble_forecast",
    "monte_carlo_forecast",
    "DeepSTUQConfig",
    "DeepSTUQPipeline",
]
