"""Adaptive Weight Averaging (AWA) re-training — paper Algorithm 1.

AWA approximates a deep ensemble with a single stored model:

* even-indexed re-training epochs sweep the learning rate from ``lr1`` down
  to ``lr2`` along a cosine (Eq. 16), letting the model escape its current
  local minimum and settle into a new one;
* odd-indexed epochs fine-tune at the constant small rate ``lr2``; at the end
  of each such epoch the current weights are folded into the running average
  (Eq. 15) and the batch-normalization statistics are re-estimated for the
  averaged weights.

The paper re-trains for 20 epochs, i.e. 10 models are averaged.  Unlike the
original SWA recipe the optimizer is Adam (Section IV-C2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.trainer import Trainer, TrainingConfig
from repro.data.datasets import TrafficData
from repro.models.base import ForecastModel
from repro.nn.normalization import BatchNorm1d
from repro.optim import Adam, CyclicCosineLR, SGD, WeightAverager
from repro.tensor import Tensor, no_grad


@dataclass
class AWAConfig:
    """Hyper-parameters of the AWA re-training stage (paper Section V-B)."""

    epochs: int = 20
    lr_max: float = 3e-3
    lr_min: float = 3e-5
    optimizer: str = "adam"
    grad_clip: Optional[float] = 5.0

    def __post_init__(self) -> None:
        if self.epochs < 2:
            raise ValueError("AWA needs at least 2 re-training epochs")
        if self.optimizer not in {"adam", "sgd"}:
            raise ValueError(f"unknown optimizer {self.optimizer!r}")

    @property
    def num_averaged_models(self) -> int:
        """One model is averaged per odd epoch (Algorithm 1, lines 8-10)."""
        return self.epochs // 2


class AWATrainer:
    """Run Algorithm 1 on a pre-trained model.

    Parameters
    ----------
    trainer:
        The :class:`~repro.core.trainer.Trainer` that pre-trained the model;
        its loss function, scaler and training config are reused so the
        re-training objective is identical (Eq. 14).
    config:
        AWA-specific hyper-parameters.
    """

    def __init__(self, trainer: Trainer, config: Optional[AWAConfig] = None) -> None:
        self.trainer = trainer
        self.config = config if config is not None else AWAConfig()
        self.history: List[Dict[str, float]] = []
        self.learning_rates: List[float] = []

    def _build_optimizer(self, model: ForecastModel):
        weight_decay = self.trainer.config.weight_decay
        if self.config.optimizer == "adam":
            return Adam(model.parameters(), lr=self.config.lr_max, weight_decay=weight_decay)
        return SGD(model.parameters(), lr=self.config.lr_max, momentum=0.9, weight_decay=weight_decay)

    def retrain(self, train_data: TrafficData) -> ForecastModel:
        """Execute the AWA re-training loop and load the averaged weights.

        The model held by the wrapped trainer is updated in place and also
        returned for convenience.
        """
        model = self.trainer.model
        loader = self.trainer.make_loader(train_data, shuffle=True)
        steps_per_epoch = max(len(loader), 1)
        optimizer = self._build_optimizer(model)
        scheduler = CyclicCosineLR(
            optimizer,
            lr_max=self.config.lr_max,
            lr_min=self.config.lr_min,
            steps_per_epoch=steps_per_epoch,
        )
        averager = WeightAverager(model)

        for epoch in range(self.config.epochs):
            model.train()
            epoch_losses = []
            for inputs, targets in loader:
                scheduler.step()
                self.learning_rates.append(optimizer.lr)
                optimizer.zero_grad()
                output = model(Tensor(inputs))
                loss = self.trainer.loss_fn(output, Tensor(targets))
                loss.backward()
                if self.config.grad_clip is not None:
                    optimizer.clip_grad_norm(self.config.grad_clip)
                optimizer.step()
                epoch_losses.append(loss.item())
            self.history.append({"epoch": epoch, "train_loss": float(np.mean(epoch_losses))})

            # Algorithm 1, lines 8-10: average after every fine-tuning (odd) epoch.
            if epoch % 2 == 1:
                averager.update(model)

        if averager.num_models == 0:
            averager.update(model)
        averager.apply_to(model)
        self._recompute_batchnorm(model, loader)
        return model

    def _recompute_batchnorm(self, model: ForecastModel, loader) -> None:
        """Re-estimate batch-norm running statistics for the averaged weights."""
        batchnorms = [m for m in model.modules() if isinstance(m, BatchNorm1d)]
        if not batchnorms:
            return
        for bn in batchnorms:
            bn.reset_running_stats()
        model.train()
        with no_grad():
            for inputs, _ in loader:
                model(Tensor(inputs))
        model.eval()
