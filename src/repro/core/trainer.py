"""Generic mini-batch trainer used by every method in the benchmark suite.

The trainer owns the scaling convention shared by all methods: models are
trained on standardized inputs *and* standardized targets; losses therefore
operate in the scaled space, and inference code maps means and standard
deviations back to the data scale through the fitted
:class:`~repro.data.StandardScaler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.data.dataloader import DataLoader
from repro.data.datasets import SlidingWindowDataset, TrafficData
from repro.data.scalers import StandardScaler
from repro.models.base import ForecastModel
from repro.optim import Adam, Optimizer, SGD
from repro.tensor import Tensor


@dataclass
class TrainingConfig:
    """Hyper-parameters shared by the pre-training stage of all methods.

    Defaults follow the paper's Section V-B, scaled down where noted so the
    NumPy substrate trains in reasonable CPU time; the benchmark configs
    override them per experiment.
    """

    history: int = 12
    horizon: int = 12
    hidden_dim: int = 16
    embed_dim: int = 4
    cheb_k: int = 2
    num_layers: int = 1
    epochs: int = 10              # paper: 100
    batch_size: int = 64
    learning_rate: float = 3e-3
    weight_decay: float = 1e-6
    lambda_weight: float = 0.1
    encoder_dropout: float = 0.1  # paper: 0.1 (0.05 for PEMS08)
    decoder_dropout: float = 0.2
    grad_clip: Optional[float] = 5.0
    mc_samples: int = 10
    optimizer: str = "adam"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if self.optimizer not in {"adam", "sgd"}:
            raise ValueError(f"unknown optimizer {self.optimizer!r}")


# Loss functions receive (model_output, scaled_target_tensor) and return a scalar Tensor.
LossFn = Callable[[Union[Tensor, Dict[str, Tensor]], Tensor], Tensor]


class Trainer:
    """Train a :class:`~repro.models.ForecastModel` on a traffic series.

    Parameters
    ----------
    model:
        The model to optimize.
    config:
        Training hyper-parameters.
    loss_fn:
        Maps ``(model_output, target)`` to a scalar loss in the scaled space.
    scaler:
        Fitted scaler shared with inference; when ``None`` a new scaler is
        fitted on the training series in :meth:`fit`.
    """

    def __init__(
        self,
        model: ForecastModel,
        config: TrainingConfig,
        loss_fn: LossFn,
        scaler: Optional[StandardScaler] = None,
        optimizer: Optional[Optimizer] = None,
    ) -> None:
        self.model = model
        self.config = config
        self.loss_fn = loss_fn
        self.scaler = scaler
        self.optimizer = optimizer if optimizer is not None else self._build_optimizer()
        self.history: List[Dict[str, float]] = []

    def _build_optimizer(self) -> Optimizer:
        if self.config.optimizer == "adam":
            return Adam(
                self.model.parameters(),
                lr=self.config.learning_rate,
                weight_decay=self.config.weight_decay,
            )
        return SGD(
            self.model.parameters(),
            lr=self.config.learning_rate,
            momentum=0.9,
            weight_decay=self.config.weight_decay,
        )

    # ------------------------------------------------------------------ #
    def make_loader(self, data: TrafficData, shuffle: bool = True) -> DataLoader:
        """Build a data loader of scaled sliding windows over ``data``."""
        if self.scaler is None:
            raise RuntimeError("scaler must be fitted before building loaders")
        scaled = TrafficData(
            name=data.name,
            values=self.scaler.transform(data.values),
            network=data.network,
            interval_minutes=data.interval_minutes,
        )
        dataset = SlidingWindowDataset(scaled, history=self.config.history, horizon=self.config.horizon)
        rng = np.random.default_rng(self.config.seed)
        return DataLoader(dataset, batch_size=self.config.batch_size, shuffle=shuffle, rng=rng)

    def train_epoch(self, loader: DataLoader) -> float:
        """One pass over the loader; returns the mean batch loss."""
        self.model.train()
        losses = []
        for inputs, targets in loader:
            self.optimizer.zero_grad()
            output = self.model(Tensor(inputs))
            loss = self.loss_fn(output, Tensor(targets))
            loss.backward()
            if self.config.grad_clip is not None:
                self.optimizer.clip_grad_norm(self.config.grad_clip)
            self.optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses)) if losses else float("nan")

    def evaluate(self, loader: DataLoader) -> float:
        """Mean loss over a loader without updating parameters."""
        from repro.tensor import no_grad

        self.model.eval()
        losses = []
        with no_grad():
            for inputs, targets in loader:
                output = self.model(Tensor(inputs))
                losses.append(self.loss_fn(output, Tensor(targets)).item())
        return float(np.mean(losses)) if losses else float("nan")

    def fit(
        self,
        train_data: TrafficData,
        val_data: Optional[TrafficData] = None,
        epochs: Optional[int] = None,
        verbose: bool = False,
    ) -> List[Dict[str, float]]:
        """Fit the model; returns the per-epoch loss history."""
        if self.scaler is None:
            self.scaler = StandardScaler().fit(train_data.values)
        train_loader = self.make_loader(train_data, shuffle=True)
        val_loader = self.make_loader(val_data, shuffle=False) if val_data is not None else None
        total_epochs = epochs if epochs is not None else self.config.epochs
        for epoch in range(total_epochs):
            record = {"epoch": epoch, "train_loss": self.train_epoch(train_loader)}
            if val_loader is not None:
                record["val_loss"] = self.evaluate(val_loader)
            self.history.append(record)
            if verbose:
                print(f"epoch {epoch}: {record}")
        return self.history
