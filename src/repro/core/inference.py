"""Monte-Carlo inference and uncertainty decomposition (paper Eqs. 7 and 19).

At test time DeepSTUQ draws ``N_MC`` stochastic forward passes (MC dropout on
the AWA-averaged weights) and combines them into

* a predictive mean — the average of the sampled means (Eq. 19a);
* an **aleatoric** variance — the average of the sampled variances, divided
  by the calibration temperature (first term of Eq. 19b);
* an **epistemic** variance — the sample variance of the sampled means
  (second term of Eq. 19b).

The sampling axis is *embarrassingly parallel*: no operation in a forward
pass mixes rows of the batch, so all ``N_MC`` stochastic passes can be
evaluated in a single vectorized forward by folding the sample axis into the
batch dimension (see :class:`BatchedPredictor`).  A looped reference path is
retained and is bit-equal to the vectorized one for the same seed, which the
equivalence tests in ``tests/uq`` assert for every registered UQ method.

The helpers below operate on *scaled* model inputs and return a
:class:`PredictionResult` in the original data scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.scalers import StandardScaler
from repro.metrics.uncertainty import Z_95 as _Z_95, interval_bounds
from repro.models.base import ForecastModel
from repro.nn.dropout import reseed_dropout, sample_fold, set_mc_dropout
from repro.tensor import Tensor, no_grad


@dataclass
class PredictionResult:
    """A probabilistic forecast in the original data scale.

    All arrays have shape ``(num_samples, horizon, num_nodes)``.

    ``lower`` / ``upper`` are optional **native interval bounds** — set by
    methods whose intervals are not symmetric Gaussian ``mean ± z * std``
    (quantile regression's pinball-loss heads, CFRNN's per-horizon conformal
    margins).  When present they carry the method's own asymmetric interval;
    downstream consumers that only understand the Gaussian interface keep
    working through ``std`` (the half-width is always folded into a pseudo
    standard deviation as well), while bound-aware consumers — the adaptive
    conformal layer — preserve the asymmetry.
    """

    mean: np.ndarray
    aleatoric_var: np.ndarray
    epistemic_var: np.ndarray
    lower: Optional[np.ndarray] = None
    upper: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if (self.lower is None) != (self.upper is None):
            raise ValueError("native bounds need both lower and upper (or neither)")

    @property
    def total_var(self) -> np.ndarray:
        """Total predictive variance (Eq. 7): aleatoric + epistemic."""
        return self.aleatoric_var + self.epistemic_var

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(np.maximum(self.total_var, 0.0))

    @property
    def aleatoric_std(self) -> np.ndarray:
        return np.sqrt(np.maximum(self.aleatoric_var, 0.0))

    @property
    def epistemic_std(self) -> np.ndarray:
        return np.sqrt(np.maximum(self.epistemic_var, 0.0))

    @property
    def num_windows(self) -> int:
        return int(self.mean.shape[0])

    @property
    def has_native_bounds(self) -> bool:
        """Whether the method supplied its own (possibly asymmetric) bounds."""
        return self.lower is not None

    def __getitem__(self, index) -> "PredictionResult":
        """Slice along the window axis (ints are kept as length-1 batches)."""
        if isinstance(index, (int, np.integer)):
            index = slice(index, index + 1) if index != -1 else slice(-1, None)
        return PredictionResult(
            mean=self.mean[index],
            aleatoric_var=self.aleatoric_var[index],
            epistemic_var=self.epistemic_var[index],
            lower=self.lower[index] if self.lower is not None else None,
            upper=self.upper[index] if self.upper is not None else None,
        )

    def copy(self) -> "PredictionResult":
        """Deep copy (own arrays, not views into a larger batch result)."""
        return PredictionResult(
            mean=self.mean.copy(),
            aleatoric_var=self.aleatoric_var.copy(),
            epistemic_var=self.epistemic_var.copy(),
            lower=self.lower.copy() if self.lower is not None else None,
            upper=self.upper.copy() if self.upper is not None else None,
        )

    @staticmethod
    def concatenate(results: Sequence["PredictionResult"]) -> "PredictionResult":
        """Stitch per-window results back into one batch (serving layer)."""
        if not results:
            raise ValueError("cannot concatenate an empty sequence of results")
        bounded = all(r.lower is not None for r in results)
        return PredictionResult(
            mean=np.concatenate([r.mean for r in results], axis=0),
            aleatoric_var=np.concatenate([r.aleatoric_var for r in results], axis=0),
            epistemic_var=np.concatenate([r.epistemic_var for r in results], axis=0),
            lower=np.concatenate([r.lower for r in results], axis=0) if bounded else None,
            upper=np.concatenate([r.upper for r in results], axis=0) if bounded else None,
        )

    def interval(self, significance: float = 0.05) -> tuple:
        """Central Gaussian prediction interval at level ``1 - significance``."""
        return interval_bounds(self.mean, self.std, significance)

    def replace_interval_std(self, std: np.ndarray) -> "PredictionResult":
        """Return a copy whose total variance equals ``std ** 2`` (conformal methods)."""
        std = np.asarray(std, dtype=np.float64)
        return PredictionResult(
            mean=self.mean.copy(),
            aleatoric_var=std ** 2,
            epistemic_var=np.zeros_like(self.mean),
        )

    def replace_interval_bounds(
        self, lower: np.ndarray, upper: np.ndarray
    ) -> "PredictionResult":
        """Copy carrying explicit (possibly asymmetric) interval bounds.

        The half-width is also folded into a pseudo standard deviation so
        Gaussian-interface consumers see an interval of the right *width*;
        only bound-aware consumers see the asymmetric placement.
        """
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        pseudo_std = np.maximum(upper - lower, 0.0) / (2.0 * _Z_95)
        return PredictionResult(
            mean=self.mean.copy(),
            aleatoric_var=pseudo_std ** 2,
            epistemic_var=np.zeros_like(self.mean),
            lower=lower,
            upper=upper,
        )


def _sample_streams(rng: np.random.Generator, num_samples: int) -> List[np.random.Generator]:
    """One independent child generator per MC sample, derived from ``rng``.

    Both the looped and the folded path hand sample ``s`` the same generator
    ``streams[s]``, so the two paths consume identical mask randomness.
    """
    seeds = rng.integers(0, np.iinfo(np.int64).max, size=num_samples)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def _chunks(total: int, batch_size: int):
    for start in range(0, total, batch_size):
        yield start, min(start + batch_size, total)


def _batched_forward(model: ForecastModel, inputs: np.ndarray, batch_size: int) -> Dict[str, np.ndarray]:
    """Run the model over ``inputs`` in mini-batches; returns stacked head outputs."""
    chunks: Dict[str, list] = {}
    for start, stop in _chunks(inputs.shape[0], batch_size):
        batch = Tensor(inputs[start:stop])
        output = model(batch)
        output = output if isinstance(output, dict) else {"mean": output}
        for name, tensor in output.items():
            chunks.setdefault(name, []).append(tensor.numpy())
    return {name: np.concatenate(parts, axis=0) for name, parts in chunks.items()}


class BatchedPredictor:
    """Vectorized Monte-Carlo inference engine over a fitted forecast model.

    The engine folds the MC sample axis into the batch dimension: an input
    chunk of ``b`` windows is tiled to ``(n_mc * b, history, nodes)`` — the
    first ``b`` rows are sample 0, the next ``b`` rows sample 1, and so on —
    and pushed through the model in **one** forward pass.  This is valid
    because no forward operation mixes batch rows, and it is exact (not just
    statistically equivalent) because every dropout layer draws sample ``s``'s
    mask slab from a dedicated per-sample random stream: the folded pass
    consumes exactly the random numbers the ``s``-th iteration of a
    sequential loop would consume.  Head outputs are un-folded to
    ``(n_mc, b, horizon, nodes)`` and the Eq. 19 mean/variance decomposition
    collapses the sample axis with single NumPy reductions.

    The win is Python-overhead amortization: the recurrent encoder costs
    ``history * num_layers`` graph-convolution dispatches per forward, so a
    looped MC estimate pays that interpreter cost ``n_mc`` times while the
    folded pass pays it once on arrays ``n_mc`` times taller.

    Parameters
    ----------
    model:
        A fitted model; dropout layers are toggled to MC mode per call and
        restored afterwards.
    scaler:
        Maps scaled-space outputs back to the original data scale.
    temperature:
        Calibration temperature applied as ``sigma^2 / T^2`` (Eqs. 17-18).
    batch_size:
        Input windows per chunk.  The folded forward evaluates
        ``num_samples * batch_size`` rows at once, so memory grows linearly
        with the MC sample count.
    """

    def __init__(
        self,
        model: ForecastModel,
        scaler: StandardScaler,
        temperature: float = 1.0,
        batch_size: int = 256,
    ) -> None:
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.model = model
        self.scaler = scaler
        self.temperature = float(temperature)
        self.batch_size = int(batch_size)

    # ------------------------------------------------------------------ #
    def deterministic(self, scaled_inputs: np.ndarray) -> PredictionResult:
        """Single deterministic forward pass (dropout off)."""
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                outputs = _batched_forward(self.model, scaled_inputs, self.batch_size)
        finally:
            if was_training:
                self.model.train()
        mean = self.scaler.inverse_transform(outputs["mean"])
        if "log_var" in outputs:
            aleatoric = self.scaler.inverse_transform_var(
                np.exp(outputs["log_var"]) / (self.temperature ** 2)
            )
        else:
            aleatoric = np.zeros_like(mean)
        return PredictionResult(mean=mean, aleatoric_var=aleatoric, epistemic_var=np.zeros_like(mean))

    # ------------------------------------------------------------------ #
    def monte_carlo(
        self,
        scaled_inputs: np.ndarray,
        num_samples: int,
        rng: Optional[np.random.Generator] = None,
        vectorized: bool = True,
    ) -> PredictionResult:
        """MC dropout forecast with uncertainty decomposition (Eq. 19).

        ``vectorized=False`` selects the looped reference path; for the same
        ``rng`` both paths return identical arrays.
        """
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        streams = _sample_streams(rng, num_samples)

        was_training = self.model.training
        self.model.eval()
        set_mc_dropout(self.model, True)
        try:
            with no_grad():
                if vectorized:
                    outputs = self._folded_forward(scaled_inputs, streams)
                else:
                    outputs = self._looped_forward(scaled_inputs, streams)
        finally:
            set_mc_dropout(self.model, False)
            if was_training:
                self.model.train()
        return self._decompose(outputs, num_samples)

    # ------------------------------------------------------------------ #
    def _folded_forward(
        self, scaled_inputs: np.ndarray, streams: List[np.random.Generator]
    ) -> Dict[str, np.ndarray]:
        """All samples of each chunk in one forward; returns (S, B, H, N) heads."""
        num_samples = len(streams)
        collected: Dict[str, list] = {}
        with sample_fold(self.model, streams):
            for start, stop in _chunks(scaled_inputs.shape[0], self.batch_size):
                chunk = scaled_inputs[start:stop]
                folded = np.concatenate([chunk] * num_samples, axis=0)
                output = self.model(Tensor(folded))
                output = output if isinstance(output, dict) else {"mean": output}
                for name, tensor in output.items():
                    data = tensor.numpy()
                    collected.setdefault(name, []).append(
                        data.reshape((num_samples, chunk.shape[0]) + data.shape[1:])
                    )
        return {name: np.concatenate(parts, axis=1) for name, parts in collected.items()}

    def _looped_forward(
        self, scaled_inputs: np.ndarray, streams: List[np.random.Generator]
    ) -> Dict[str, np.ndarray]:
        """Sequential reference: one full pass per sample; returns (S, B, H, N)."""
        collected: Dict[str, list] = {}
        for stream in streams:
            reseed_dropout(self.model, stream)
            outputs = _batched_forward(self.model, scaled_inputs, self.batch_size)
            for name, data in outputs.items():
                collected.setdefault(name, []).append(data)
        return {name: np.stack(parts, axis=0) for name, parts in collected.items()}

    # ------------------------------------------------------------------ #
    def _decompose(self, outputs: Dict[str, np.ndarray], num_samples: int) -> PredictionResult:
        """Fused Eq. 19 decomposition: single reductions over the sample axis."""
        means = outputs["mean"]  # (S, B, H, N)
        mean_scaled = means.mean(axis=0)
        if num_samples > 1:
            epistemic_scaled = means.var(axis=0, ddof=1)
        else:
            epistemic_scaled = np.zeros_like(mean_scaled)
        if "log_var" in outputs:
            aleatoric_scaled = np.exp(outputs["log_var"]).mean(axis=0) / (self.temperature ** 2)
        else:
            aleatoric_scaled = np.zeros_like(mean_scaled)
        return PredictionResult(
            mean=self.scaler.inverse_transform(mean_scaled),
            aleatoric_var=self.scaler.inverse_transform_var(aleatoric_scaled),
            epistemic_var=self.scaler.inverse_transform_var(epistemic_scaled),
        )


def deterministic_forecast(
    model: ForecastModel,
    scaled_inputs: np.ndarray,
    scaler: StandardScaler,
    batch_size: int = 256,
) -> PredictionResult:
    """Single deterministic forward pass (dropout off) — DeepSTUQ/S and MVE.

    The aleatoric variance comes from the ``log_var`` head when present,
    otherwise it is zero; the epistemic variance is zero by construction.
    """
    predictor = BatchedPredictor(model, scaler, batch_size=batch_size)
    return predictor.deterministic(scaled_inputs)


def monte_carlo_forecast(
    model: ForecastModel,
    scaled_inputs: np.ndarray,
    scaler: StandardScaler,
    num_samples: int = 10,
    temperature: float = 1.0,
    batch_size: int = 256,
    rng: Optional[np.random.Generator] = None,
    vectorized: bool = True,
) -> PredictionResult:
    """Monte-Carlo dropout forecast with uncertainty decomposition (Eq. 19).

    Parameters
    ----------
    model:
        A model with dropout layers; MC mode is enabled for the duration of
        the call (and restored afterwards).
    num_samples:
        Number of stochastic forward passes ``N_MC`` (the paper uses 10).
    temperature:
        Calibration temperature ``T`` applied to the aleatoric variance as
        ``sigma^2 / T^2``, which is the scaling implied by the calibration
        likelihood (Eqs. 17-18); Eq. 19b of the paper abbreviates it as a
        ``1/T`` factor.
    vectorized:
        ``True`` (default) evaluates all samples in one folded forward pass
        per chunk; ``False`` runs the sequential per-sample loop.  Both paths
        produce identical results for the same ``rng``.
    """
    predictor = BatchedPredictor(model, scaler, temperature=temperature, batch_size=batch_size)
    return predictor.monte_carlo(scaled_inputs, num_samples, rng=rng, vectorized=vectorized)


def ensemble_forecast(
    members: Sequence[ForecastModel],
    scaled_inputs: np.ndarray,
    scaler: StandardScaler,
    batch_size: int = 256,
) -> PredictionResult:
    """Gaussian-mixture fusion of independently trained ensemble members.

    Member forward passes stay separate (each member has its own weights) but
    the mixture moments — mean of means, mean of variances, variance of means
    — are fused into single reductions over the stacked member axis, the same
    shape of computation :class:`BatchedPredictor` uses for MC samples.
    """
    if not members:
        raise ValueError("ensemble_forecast requires at least one member")
    means, variances = [], []
    for model in members:
        result = BatchedPredictor(model, scaler, batch_size=batch_size).deterministic(scaled_inputs)
        means.append(result.mean)
        variances.append(result.aleatoric_var)
    stacked_means = np.stack(means, axis=0)  # (M, B, H, N)
    mean = stacked_means.mean(axis=0)
    aleatoric = np.stack(variances, axis=0).mean(axis=0)
    if len(members) > 1:
        epistemic = stacked_means.var(axis=0, ddof=1)
    else:
        epistemic = np.zeros_like(mean)
    return PredictionResult(mean=mean, aleatoric_var=aleatoric, epistemic_var=epistemic)
