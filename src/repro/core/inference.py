"""Monte-Carlo inference and uncertainty decomposition (paper Eqs. 7 and 19).

At test time DeepSTUQ draws ``N_MC`` stochastic forward passes (MC dropout on
the AWA-averaged weights) and combines them into

* a predictive mean — the average of the sampled means (Eq. 19a);
* an **aleatoric** variance — the average of the sampled variances, divided
  by the calibration temperature (first term of Eq. 19b);
* an **epistemic** variance — the sample variance of the sampled means
  (second term of Eq. 19b).

The helpers below operate on *scaled* model inputs and return a
:class:`PredictionResult` in the original data scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.data.scalers import StandardScaler
from repro.metrics.uncertainty import interval_bounds
from repro.models.base import ForecastModel
from repro.tensor import Tensor, no_grad


@dataclass
class PredictionResult:
    """A probabilistic forecast in the original data scale.

    All arrays have shape ``(num_samples, horizon, num_nodes)``.
    """

    mean: np.ndarray
    aleatoric_var: np.ndarray
    epistemic_var: np.ndarray

    @property
    def total_var(self) -> np.ndarray:
        """Total predictive variance (Eq. 7): aleatoric + epistemic."""
        return self.aleatoric_var + self.epistemic_var

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(np.maximum(self.total_var, 0.0))

    @property
    def aleatoric_std(self) -> np.ndarray:
        return np.sqrt(np.maximum(self.aleatoric_var, 0.0))

    @property
    def epistemic_std(self) -> np.ndarray:
        return np.sqrt(np.maximum(self.epistemic_var, 0.0))

    def interval(self, significance: float = 0.05) -> tuple:
        """Central Gaussian prediction interval at level ``1 - significance``."""
        return interval_bounds(self.mean, self.std, significance)

    def replace_interval_std(self, std: np.ndarray) -> "PredictionResult":
        """Return a copy whose total variance equals ``std ** 2`` (conformal methods)."""
        std = np.asarray(std, dtype=np.float64)
        return PredictionResult(
            mean=self.mean.copy(),
            aleatoric_var=std ** 2,
            epistemic_var=np.zeros_like(self.mean),
        )


def _batched_forward(model: ForecastModel, inputs: np.ndarray, batch_size: int) -> Dict[str, np.ndarray]:
    """Run the model over ``inputs`` in mini-batches; returns stacked head outputs."""
    chunks: Dict[str, list] = {}
    for start in range(0, inputs.shape[0], batch_size):
        batch = Tensor(inputs[start : start + batch_size])
        output = model(batch)
        output = output if isinstance(output, dict) else {"mean": output}
        for name, tensor in output.items():
            chunks.setdefault(name, []).append(tensor.numpy())
    return {name: np.concatenate(parts, axis=0) for name, parts in chunks.items()}


def deterministic_forecast(
    model: ForecastModel,
    scaled_inputs: np.ndarray,
    scaler: StandardScaler,
    batch_size: int = 256,
) -> PredictionResult:
    """Single deterministic forward pass (dropout off) — DeepSTUQ/S and MVE.

    The aleatoric variance comes from the ``log_var`` head when present,
    otherwise it is zero; the epistemic variance is zero by construction.
    """
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            outputs = _batched_forward(model, scaled_inputs, batch_size)
    finally:
        if was_training:
            model.train()
    mean = scaler.inverse_transform(outputs["mean"])
    if "log_var" in outputs:
        aleatoric = scaler.inverse_transform_var(np.exp(outputs["log_var"]))
    else:
        aleatoric = np.zeros_like(mean)
    return PredictionResult(mean=mean, aleatoric_var=aleatoric, epistemic_var=np.zeros_like(mean))


def monte_carlo_forecast(
    model: ForecastModel,
    scaled_inputs: np.ndarray,
    scaler: StandardScaler,
    num_samples: int = 10,
    temperature: float = 1.0,
    batch_size: int = 256,
    rng: Optional[np.random.Generator] = None,
) -> PredictionResult:
    """Monte-Carlo dropout forecast with uncertainty decomposition (Eq. 19).

    Parameters
    ----------
    model:
        A model with dropout layers; MC mode is enabled for the duration of
        the call (and restored afterwards).  Models exposing
        ``set_mc_dropout`` / ``reseed_dropout`` (e.g. :class:`~repro.models.AGCRN`)
        are toggled through that interface.
    num_samples:
        Number of stochastic forward passes ``N_MC`` (the paper uses 10).
    temperature:
        Calibration temperature ``T`` applied to the aleatoric variance as
        ``sigma^2 / T^2``, which is the scaling implied by the calibration
        likelihood (Eqs. 17-18); Eq. 19b of the paper abbreviates it as a
        ``1/T`` factor.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    rng = rng if rng is not None else np.random.default_rng()

    toggle = getattr(model, "set_mc_dropout", None)
    reseed = getattr(model, "reseed_dropout", None)
    was_training = model.training
    model.eval()
    if toggle is not None:
        toggle(True)
    if reseed is not None:
        reseed(rng)
    try:
        sampled_means = []
        sampled_vars = []
        with no_grad():
            for _ in range(num_samples):
                outputs = _batched_forward(model, scaled_inputs, batch_size)
                sampled_means.append(outputs["mean"])
                if "log_var" in outputs:
                    sampled_vars.append(np.exp(outputs["log_var"]))
    finally:
        if toggle is not None:
            toggle(False)
        if was_training:
            model.train()

    means = np.stack(sampled_means, axis=0)  # (S, B, H, N)
    mean_scaled = means.mean(axis=0)
    if num_samples > 1:
        epistemic_scaled = means.var(axis=0, ddof=1)
    else:
        epistemic_scaled = np.zeros_like(mean_scaled)
    if sampled_vars:
        aleatoric_scaled = np.stack(sampled_vars, axis=0).mean(axis=0) / (temperature ** 2)
    else:
        aleatoric_scaled = np.zeros_like(mean_scaled)

    return PredictionResult(
        mean=scaler.inverse_transform(mean_scaled),
        aleatoric_var=scaler.inverse_transform_var(aleatoric_scaled),
        epistemic_var=scaler.inverse_transform_var(epistemic_scaled),
    )
