"""Post-hoc variance calibration via temperature scaling (paper Eqs. 17-18).

A single positive scalar ``T`` rescales the predicted variance
(``sigma^2 -> sigma^2 / T^2`` on the log-likelihood of Eq. 17; equivalently
the calibrated variance used at inference is ``sigma^2 / T`` in Eq. 19b).

``T`` is fitted on the *validation* split by minimizing

``(1/N) sum_i [ -log T^2 + T^2 (y_i - mu_i)^2 / sigma_i^2 ]``  (Eq. 18)

with L-BFGS, using cached predictions (either a deterministic forward pass or
Monte-Carlo estimates).  The objective is convex in ``T^2`` and has the
closed form minimizer ``T^2 = N / sum_i r_i`` with ``r_i = (y_i - mu_i)^2 /
sigma_i^2``; the closed form is exposed for testing and as a fallback when
the optimizer is disabled.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.optim.lbfgs import minimize_scalar_lbfgs


class TemperatureCalibrator:
    """Fit and apply the temperature ``T`` of DeepSTUQ's calibration stage.

    Attributes
    ----------
    temperature:
        The fitted ``T`` (1.0 until :meth:`fit` is called).
    """

    def __init__(self, max_iter: int = 500) -> None:
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.max_iter = max_iter
        self.temperature: float = 1.0
        self.fitted: bool = False

    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate(
        target: np.ndarray, mean: np.ndarray, variance: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        target = np.asarray(target, dtype=np.float64)
        mean = np.asarray(mean, dtype=np.float64)
        variance = np.asarray(variance, dtype=np.float64)
        if target.shape != mean.shape or target.shape != variance.shape:
            raise ValueError("target, mean and variance must have identical shapes")
        if np.any(variance <= 0):
            variance = np.maximum(variance, 1e-8)
        return target, mean, variance

    @staticmethod
    def closed_form_temperature(
        target: np.ndarray, mean: np.ndarray, variance: np.ndarray
    ) -> float:
        """Analytic minimizer of Eq. 18: ``T = sqrt(N / sum_i r_i)``."""
        target, mean, variance = TemperatureCalibrator._validate(target, mean, variance)
        ratios = (target - mean) ** 2 / variance
        total = float(ratios.sum())
        if total <= 0:
            return 1.0
        return float(np.sqrt(target.size / total))

    def objective(
        self, temperature: float, target: np.ndarray, mean: np.ndarray, variance: np.ndarray
    ) -> Tuple[float, float]:
        """Value and derivative of the calibration objective at ``temperature``."""
        target, mean, variance = self._validate(target, mean, variance)
        ratios = (target - mean) ** 2 / variance
        mean_ratio = float(ratios.mean())
        t_squared = temperature * temperature
        value = -np.log(max(t_squared, 1e-12)) + t_squared * mean_ratio
        gradient = -2.0 / max(temperature, 1e-12) + 2.0 * temperature * mean_ratio
        return float(value), float(gradient)

    def fit(
        self,
        target: np.ndarray,
        mean: np.ndarray,
        variance: np.ndarray,
        use_lbfgs: bool = True,
    ) -> float:
        """Fit ``T`` on validation predictions; returns the fitted temperature."""
        target, mean, variance = self._validate(target, mean, variance)
        if use_lbfgs:
            initial = self.closed_form_temperature(target, mean, variance)
            self.temperature = float(
                abs(
                    minimize_scalar_lbfgs(
                        lambda t: self.objective(t, target, mean, variance),
                        x0=max(initial, 1e-3),
                        max_iter=self.max_iter,
                    )
                )
            )
        else:
            self.temperature = self.closed_form_temperature(target, mean, variance)
        if not np.isfinite(self.temperature) or self.temperature <= 0:
            self.temperature = 1.0
        self.fitted = True
        return self.temperature

    # ------------------------------------------------------------------ #
    def calibrate_variance(self, variance: np.ndarray) -> np.ndarray:
        """Apply the fitted temperature to an aleatoric variance (Eq. 19b)."""
        variance = np.asarray(variance, dtype=np.float64)
        return variance / (self.temperature ** 2)

    def calibrate_std(self, std: np.ndarray) -> np.ndarray:
        """Apply the fitted temperature to a standard deviation."""
        std = np.asarray(std, dtype=np.float64)
        return std / self.temperature
