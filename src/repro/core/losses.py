"""Training losses of DeepSTUQ and the uncertainty-quantification baselines.

* :func:`heteroscedastic_gaussian_loss` — the negative heterogeneous
  log-likelihood of paper Eq. 8 (what MVE maximizes).
* :func:`combined_loss` — the weighted NLL + L1 loss of Eq. 9 / Eq. 14 used
  to pre-train DeepSTUQ (the weight-decay / KL term of Eq. 12 is applied via
  the optimizer's ``weight_decay``, exactly as noted below Eq. 12).
* :func:`point_l1_loss` — the MAE loss used by the deterministic baselines.
* :func:`quantile_loss` — multi-quantile pinball loss for the quantile
  regression baseline.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.tensor import Tensor
from repro.tensor import functional as F


def heteroscedastic_gaussian_loss(mean: Tensor, log_var: Tensor, target: Tensor) -> Tensor:
    """Negative heterogeneous Gaussian log-likelihood (Eq. 8, sign flipped).

    ``log(sigma^2) + (y - mu)^2 / sigma^2`` averaged over all entries; the
    constant ``log(2 pi)`` term is dropped here (it does not affect training)
    and re-added by the MNLL metric.
    """
    inv_var = (-log_var).exp()
    per_element = log_var + (target - mean) * (target - mean) * inv_var
    return per_element.mean()


def point_l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error loss used by the deterministic baselines."""
    return F.l1_loss(prediction, target)


def combined_loss(
    mean: Tensor,
    log_var: Tensor,
    target: Tensor,
    lambda_weight: float = 0.1,
) -> Tensor:
    """The DeepSTUQ training loss (Eqs. 9 and 14).

    ``lambda * [log sigma^2 + (y - mu)^2 / sigma^2] + (1 - lambda) * |y - mu|``

    Parameters
    ----------
    lambda_weight:
        Relative weight of the likelihood term, ``0 < lambda <= 1``
        (the paper uses 0.1).  The L1 term acts as a regularizer that
        stabilizes and accelerates training.
    """
    if not 0.0 < lambda_weight <= 1.0:
        raise ValueError(f"lambda_weight must be in (0, 1], got {lambda_weight}")
    nll = heteroscedastic_gaussian_loss(mean, log_var, target)
    l1 = F.l1_loss(mean, target)
    return lambda_weight * nll + (1.0 - lambda_weight) * l1


def quantile_loss(outputs: Dict[str, Tensor], target: Tensor, quantiles: Dict[str, float]) -> Tensor:
    """Sum of pinball losses over named quantile heads.

    ``outputs`` maps head names (e.g. ``lower``, ``mean``, ``upper``) to
    predictions; ``quantiles`` maps the same names to their quantile levels
    (0.025, 0.5, 0.975 in the paper's quantile-regression baseline).
    """
    if set(outputs) != set(quantiles):
        raise ValueError(
            f"output heads {sorted(outputs)} do not match quantile spec {sorted(quantiles)}"
        )
    total = None
    for name, prediction in outputs.items():
        term = F.pinball_loss(prediction, target, quantiles[name])
        total = term if total is None else total + term
    return total
