"""The three-stage DeepSTUQ pipeline (paper Section IV-D).

Stage 1 — **pre-training**: the base model with mean / log-variance heads and
dropout is trained on the training split with the combined loss (Eq. 14),
estimating aleatoric uncertainty and enabling MC-dropout epistemic sampling.

Stage 2 — **AWA re-training**: the pre-trained model is re-trained with the
cyclic cosine learning rate of Algorithm 1 while its weights are averaged
(Eq. 15), approximating a deep ensemble with a single model.

Stage 3 — **calibration**: a temperature ``T`` is fitted on the validation
split (Eqs. 17-18) and applied to the predicted aleatoric variance at
inference time.

Inference draws ``N_MC`` Monte-Carlo dropout samples and decomposes the
predictive variance into aleatoric and epistemic parts (Eqs. 7 and 19).

The base model is the paper's AGCRN by default, but any backbone registered
in :mod:`repro.models.registry` can be substituted (``backbone="DCRNN"``
plus an adjacency matrix); sliding-window and scaling scaffolding is shared
with :class:`~repro.uq.base.UQMethod` through
:class:`~repro.core.windowing.WindowedForecaster`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.awa import AWAConfig, AWATrainer
from repro.core.calibration import TemperatureCalibrator
from repro.core.inference import PredictionResult, deterministic_forecast, monte_carlo_forecast
from repro.core.losses import combined_loss
from repro.core.trainer import Trainer, TrainingConfig
from repro.core.windowing import WindowedForecaster
from repro.data.datasets import TrafficData
from repro.data.scalers import StandardScaler
from repro.utils.serialization import pack_state_arrays, unpack_state_arrays


@dataclass
class DeepSTUQConfig:
    """Complete configuration of the DeepSTUQ pipeline."""

    training: TrainingConfig = field(default_factory=TrainingConfig)
    awa: AWAConfig = field(default_factory=AWAConfig)
    calibration_max_iter: int = 500
    calibration_mc_samples: int = 10
    use_awa: bool = True
    use_calibration: bool = True


class DeepSTUQPipeline(WindowedForecaster):
    """Train and apply DeepSTUQ on a traffic dataset.

    Parameters
    ----------
    num_nodes:
        Number of sensors in the road network.
    config:
        Pipeline configuration; defaults reproduce the paper's settings
        (scaled down for CPU).
    rng:
        Random generator controlling weight init and MC sampling.
    backbone, backbone_kwargs, adjacency:
        Base-architecture selection, resolved through
        :func:`repro.models.registry.create_backbone`; the default is the
        paper's AGCRN, for which no adjacency is needed.

    Examples
    --------
    >>> pipeline = DeepSTUQPipeline(num_nodes=20)          # doctest: +SKIP
    >>> pipeline.fit(train_data, val_data)                  # doctest: +SKIP
    >>> result = pipeline.predict(test_histories)           # doctest: +SKIP
    >>> result.mean, result.std                              # doctest: +SKIP
    """

    #: ``_rng`` only seeds weight initialization; the checkpointed weights
    #: already encode its effect (predict/calibrate derive per-call
    #: generators from the configured seed instead).
    _CHECKPOINT_EXEMPT = ("_rng",)

    def __init__(
        self,
        num_nodes: int,
        config: Optional[DeepSTUQConfig] = None,
        rng: Optional[np.random.Generator] = None,
        backbone: str = "AGCRN",
        backbone_kwargs: Optional[Dict[str, Any]] = None,
        adjacency: Optional[np.ndarray] = None,
    ) -> None:
        from repro.models.registry import create_backbone

        self.num_nodes = num_nodes
        self.config = config if config is not None else DeepSTUQConfig()
        self._rng = rng if rng is not None else np.random.default_rng(self.config.training.seed)
        self._configure_backbone(backbone, backbone_kwargs, adjacency)
        self.model = create_backbone(
            self.backbone_name,
            num_nodes=num_nodes,
            config=self.config.training,
            heads=("mean", "log_var"),
            adjacency=self.adjacency,
            rng=self._rng,
            **self.backbone_kwargs,
        )
        self.scaler: Optional[StandardScaler] = None
        self.calibrator = TemperatureCalibrator(max_iter=self.config.calibration_max_iter)
        self.trainer: Optional[Trainer] = None
        self.awa_trainer: Optional[AWATrainer] = None
        self.stage_history: Dict[str, List] = {}
        self.fitted = False

    # ------------------------------------------------------------------ #
    @property
    def window_config(self) -> TrainingConfig:
        return self.config.training

    @property
    def _display_name(self) -> str:
        return "the pipeline"

    def _loss(self, output, target):
        return combined_loss(
            output["mean"], output["log_var"], target, lambda_weight=self.config.training.lambda_weight
        )

    def fit(
        self,
        train_data: TrafficData,
        val_data: TrafficData,
        verbose: bool = False,
    ) -> "DeepSTUQPipeline":
        """Run the three training stages."""
        # Stage 1: pre-training with the combined loss.
        self._fit_scaler(train_data)
        self.trainer = Trainer(self.model, self.config.training, self._loss, scaler=self.scaler)
        self.trainer.fit(train_data, val_data=None, verbose=verbose)
        self.stage_history["pretraining"] = list(self.trainer.history)

        # Stage 2: AWA re-training (ensemble approximation).
        if self.config.use_awa:
            self.awa_trainer = AWATrainer(self.trainer, self.config.awa)
            self.awa_trainer.retrain(train_data)
            self.stage_history["awa"] = list(self.awa_trainer.history)

        # Stage 3: temperature-scaling calibration on the validation split.
        if self.config.use_calibration:
            self.calibrate(val_data)
        self.fitted = True
        return self

    def calibrate(self, val_data: TrafficData) -> float:
        """Fit the calibration temperature on a validation split (Eq. 18)."""
        if self.scaler is None:
            raise RuntimeError("fit() must run (at least stage 1) before calibrate()")
        inputs, targets = self._windows(val_data)
        result = monte_carlo_forecast(
            self.model,
            self.scaler.transform(inputs),
            self.scaler,
            num_samples=self.config.calibration_mc_samples,
            temperature=1.0,
            rng=np.random.default_rng(self.config.training.seed + 1),
        )
        temperature = self.calibrator.fit(targets, result.mean, np.maximum(result.aleatoric_var, 1e-8))
        self.stage_history["calibration"] = [{"temperature": temperature}]
        return temperature

    # ------------------------------------------------------------------ #
    def predict(
        self,
        histories: np.ndarray,
        num_samples: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        vectorized: bool = True,
    ) -> PredictionResult:
        """Probabilistic forecast for raw (unscaled) history windows.

        Parameters
        ----------
        histories:
            Array of shape ``(batch, history, num_nodes)`` in the original
            data scale.
        num_samples:
            Number of MC dropout samples (defaults to the configured
            ``mc_samples``; 1 plus deterministic heads recovers DeepSTUQ/S).
        vectorized:
            Evaluate all MC samples in one folded forward pass (default) or
            loop over them; the results are identical for the same seed.
        """
        samples = num_samples if num_samples is not None else self.config.training.mc_samples
        return monte_carlo_forecast(
            self.model,
            self._scale_inputs(histories),
            self.scaler,
            num_samples=samples,
            temperature=self.calibrator.temperature,
            rng=rng if rng is not None else np.random.default_rng(self.config.training.seed + 2),
            vectorized=vectorized,
        )

    def predict_single_pass(self, histories: np.ndarray) -> PredictionResult:
        """DeepSTUQ/S: one deterministic forward pass (dropout off)."""
        result = deterministic_forecast(self.model, self._scale_inputs(histories), self.scaler)
        calibrated = self.calibrator.calibrate_variance(result.aleatoric_var)
        return PredictionResult(
            mean=result.mean, aleatoric_var=calibrated, epistemic_var=result.epistemic_var
        )

    # ------------------------------------------------------------------ #
    # Full-state checkpointing
    # ------------------------------------------------------------------ #
    def get_state(self) -> Dict[str, Any]:
        """Inference state: backbone weights + scaler + calibration temperature."""
        if not self.fitted:
            raise RuntimeError("the pipeline must be fitted before its state can be saved")
        meta: Dict[str, Any] = {
            "backbone": self.backbone_name,
            "fitted": True,
            "temperature": self.calibrator.temperature,
            "calibrator_fitted": self.calibrator.fitted,
        }
        scaler_state = self._scaler_state()
        if scaler_state is not None:
            meta["scaler"] = scaler_state
        return {"meta": meta, "arrays": pack_state_arrays("model.", self.model.state_dict())}

    def set_state(self, state: Dict[str, Any]) -> "DeepSTUQPipeline":
        """Restore a :meth:`get_state` snapshot (same configuration required)."""
        meta = state["meta"]
        self._check_saved_backbone(meta)
        self._restore_scaler(meta.get("scaler"))
        self.model.load_state_dict(unpack_state_arrays("model.", state["arrays"]))
        self.calibrator.temperature = float(meta.get("temperature", 1.0))
        self.calibrator.fitted = bool(meta.get("calibrator_fitted", False))
        self.fitted = bool(meta.get("fitted", True))
        return self
