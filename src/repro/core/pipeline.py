"""The three-stage DeepSTUQ pipeline (paper Section IV-D).

Stage 1 — **pre-training**: the AGCRN base model with mean / log-variance
heads and dropout is trained on the training split with the combined loss
(Eq. 14), estimating aleatoric uncertainty and enabling MC-dropout epistemic
sampling.

Stage 2 — **AWA re-training**: the pre-trained model is re-trained with the
cyclic cosine learning rate of Algorithm 1 while its weights are averaged
(Eq. 15), approximating a deep ensemble with a single model.

Stage 3 — **calibration**: a temperature ``T`` is fitted on the validation
split (Eqs. 17-18) and applied to the predicted aleatoric variance at
inference time.

Inference draws ``N_MC`` Monte-Carlo dropout samples and decomposes the
predictive variance into aleatoric and epistemic parts (Eqs. 7 and 19).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.awa import AWAConfig, AWATrainer
from repro.core.calibration import TemperatureCalibrator
from repro.core.inference import PredictionResult, deterministic_forecast, monte_carlo_forecast
from repro.core.losses import combined_loss
from repro.core.trainer import Trainer, TrainingConfig
from repro.data.datasets import SlidingWindowDataset, TrafficData
from repro.data.scalers import StandardScaler
from repro.models.agcrn import AGCRN


@dataclass
class DeepSTUQConfig:
    """Complete configuration of the DeepSTUQ pipeline."""

    training: TrainingConfig = field(default_factory=TrainingConfig)
    awa: AWAConfig = field(default_factory=AWAConfig)
    calibration_max_iter: int = 500
    calibration_mc_samples: int = 10
    use_awa: bool = True
    use_calibration: bool = True


class DeepSTUQPipeline:
    """Train and apply DeepSTUQ on a traffic dataset.

    Parameters
    ----------
    num_nodes:
        Number of sensors in the road network.
    config:
        Pipeline configuration; defaults reproduce the paper's settings
        (scaled down for CPU).
    rng:
        Random generator controlling weight init and MC sampling.

    Examples
    --------
    >>> pipeline = DeepSTUQPipeline(num_nodes=20)          # doctest: +SKIP
    >>> pipeline.fit(train_data, val_data)                  # doctest: +SKIP
    >>> result = pipeline.predict(test_histories)           # doctest: +SKIP
    >>> result.mean, result.std                              # doctest: +SKIP
    """

    def __init__(
        self,
        num_nodes: int,
        config: Optional[DeepSTUQConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.config = config if config is not None else DeepSTUQConfig()
        self._rng = rng if rng is not None else np.random.default_rng(self.config.training.seed)
        training = self.config.training
        self.model = AGCRN(
            num_nodes=num_nodes,
            history=training.history,
            horizon=training.horizon,
            hidden_dim=training.hidden_dim,
            embed_dim=training.embed_dim,
            cheb_k=training.cheb_k,
            num_layers=training.num_layers,
            encoder_dropout=training.encoder_dropout,
            decoder_dropout=training.decoder_dropout,
            heads=("mean", "log_var"),
            rng=self._rng,
        )
        self.scaler: Optional[StandardScaler] = None
        self.calibrator = TemperatureCalibrator(max_iter=self.config.calibration_max_iter)
        self.trainer: Optional[Trainer] = None
        self.awa_trainer: Optional[AWATrainer] = None
        self.stage_history: Dict[str, List] = {}
        self.fitted = False

    # ------------------------------------------------------------------ #
    def _loss(self, output, target):
        return combined_loss(
            output["mean"], output["log_var"], target, lambda_weight=self.config.training.lambda_weight
        )

    def fit(
        self,
        train_data: TrafficData,
        val_data: TrafficData,
        verbose: bool = False,
    ) -> "DeepSTUQPipeline":
        """Run the three training stages."""
        # Stage 1: pre-training with the combined loss.
        self.scaler = StandardScaler().fit(train_data.values)
        self.trainer = Trainer(self.model, self.config.training, self._loss, scaler=self.scaler)
        self.trainer.fit(train_data, val_data=None, verbose=verbose)
        self.stage_history["pretraining"] = list(self.trainer.history)

        # Stage 2: AWA re-training (ensemble approximation).
        if self.config.use_awa:
            self.awa_trainer = AWATrainer(self.trainer, self.config.awa)
            self.awa_trainer.retrain(train_data)
            self.stage_history["awa"] = list(self.awa_trainer.history)

        # Stage 3: temperature-scaling calibration on the validation split.
        if self.config.use_calibration:
            self.calibrate(val_data)
        self.fitted = True
        return self

    def calibrate(self, val_data: TrafficData) -> float:
        """Fit the calibration temperature on a validation split (Eq. 18)."""
        if self.scaler is None:
            raise RuntimeError("fit() must run (at least stage 1) before calibrate()")
        inputs, targets = self._windows(val_data)
        result = monte_carlo_forecast(
            self.model,
            self.scaler.transform(inputs),
            self.scaler,
            num_samples=self.config.calibration_mc_samples,
            temperature=1.0,
            rng=np.random.default_rng(self.config.training.seed + 1),
        )
        temperature = self.calibrator.fit(targets, result.mean, np.maximum(result.aleatoric_var, 1e-8))
        self.stage_history["calibration"] = [{"temperature": temperature}]
        return temperature

    # ------------------------------------------------------------------ #
    def _windows(self, data: TrafficData):
        dataset = SlidingWindowDataset(
            data, history=self.config.training.history, horizon=self.config.training.horizon
        )
        return dataset.arrays()

    def predict(
        self,
        histories: np.ndarray,
        num_samples: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        vectorized: bool = True,
    ) -> PredictionResult:
        """Probabilistic forecast for raw (unscaled) history windows.

        Parameters
        ----------
        histories:
            Array of shape ``(batch, history, num_nodes)`` in the original
            data scale.
        num_samples:
            Number of MC dropout samples (defaults to the configured
            ``mc_samples``; 1 plus deterministic heads recovers DeepSTUQ/S).
        vectorized:
            Evaluate all MC samples in one folded forward pass (default) or
            loop over them; the results are identical for the same seed.
        """
        if self.scaler is None:
            raise RuntimeError("the pipeline must be fitted before predicting")
        samples = num_samples if num_samples is not None else self.config.training.mc_samples
        scaled = self.scaler.transform(np.asarray(histories, dtype=np.float64))
        return monte_carlo_forecast(
            self.model,
            scaled,
            self.scaler,
            num_samples=samples,
            temperature=self.calibrator.temperature,
            rng=rng if rng is not None else np.random.default_rng(self.config.training.seed + 2),
            vectorized=vectorized,
        )

    def predict_single_pass(self, histories: np.ndarray) -> PredictionResult:
        """DeepSTUQ/S: one deterministic forward pass (dropout off)."""
        if self.scaler is None:
            raise RuntimeError("the pipeline must be fitted before predicting")
        scaled = self.scaler.transform(np.asarray(histories, dtype=np.float64))
        result = deterministic_forecast(self.model, scaled, self.scaler)
        calibrated = self.calibrator.calibrate_variance(result.aleatoric_var)
        return PredictionResult(
            mean=result.mean, aleatoric_var=calibrated, epistemic_var=result.epistemic_var
        )

    def predict_on(self, data: TrafficData, num_samples: Optional[int] = None):
        """Forecast every window of a traffic series; returns (result, targets)."""
        inputs, targets = self._windows(data)
        return self.predict(inputs, num_samples=num_samples), targets
