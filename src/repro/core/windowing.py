"""Shared sliding-window / scaling scaffolding for trainable forecasters.

Both :class:`~repro.uq.base.UQMethod` and
:class:`~repro.core.pipeline.DeepSTUQPipeline` forecast raw history windows
through the same recipe — build sliding windows at the configured
history/horizon, standardize inputs with the scaler fitted on the training
split, refuse to predict before fitting.  :class:`WindowedForecaster`
centralizes that scaffolding so the two classes cannot drift apart; they only
provide the :attr:`window_config` hook (where their history/horizon live) and
implement ``predict``.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.data.datasets import SlidingWindowDataset, TrafficData
from repro.data.scalers import StandardScaler


class WindowedForecaster:
    """Mixin: window construction, input scaling and fitted-state checks.

    Hosts expose

    * ``scaler`` — a fitted :class:`StandardScaler` (``None`` before fit);
    * ``fitted`` — a boolean flipped by their ``fit``;
    * :attr:`window_config` — an object with ``history`` and ``horizon``;
    * ``_display_name`` — how error messages refer to the forecaster.
    """

    scaler: Optional[StandardScaler] = None
    fitted: bool = False

    @property
    def window_config(self) -> Any:
        """The object carrying ``history`` / ``horizon`` for windowing."""
        raise NotImplementedError

    @property
    def _display_name(self) -> str:
        return self.__class__.__name__

    # ------------------------------------------------------------------ #
    def _configure_backbone(
        self,
        backbone: str,
        backbone_kwargs: Optional[dict],
        adjacency: Optional[np.ndarray],
    ) -> None:
        """Resolve/validate the backbone choice and normalize its arguments.

        Sets ``backbone_name``, ``backbone_kwargs`` and ``adjacency`` on the
        host; the naive (parameter-free) reference backbones are rejected
        because gradient-based fitting cannot train them.
        """
        from repro.models.registry import backbone_info

        info = backbone_info(backbone)
        if not info.trainable:
            raise ValueError(
                f"backbone {info.name!r} has no trainable parameters and cannot "
                f"be trained by {self._display_name}; use it directly via "
                "repro.models.create_backbone for naive-reference forecasts"
            )
        self.backbone_name = info.name
        self.backbone_kwargs = dict(backbone_kwargs) if backbone_kwargs else {}
        self.adjacency = (
            np.asarray(adjacency, dtype=np.float64) if adjacency is not None else None
        )

    def _fit_scaler(self, train_data: TrafficData) -> StandardScaler:
        self.scaler = StandardScaler().fit(train_data.values)
        return self.scaler

    def _windows(self, data: TrafficData) -> Tuple[np.ndarray, np.ndarray]:
        """All sliding ``(inputs, targets)`` windows of a traffic series."""
        config = self.window_config
        dataset = SlidingWindowDataset(data, history=config.history, horizon=config.horizon)
        return dataset.arrays()

    def _scale_inputs(self, histories: np.ndarray) -> np.ndarray:
        """Standardize raw history windows, refusing before the scaler exists."""
        if self.scaler is None:
            raise RuntimeError(f"{self._display_name} must be fitted before predicting")
        return self.scaler.transform(np.asarray(histories, dtype=np.float64))

    def _check_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError(f"{self._display_name} must be fitted before predicting")

    # ------------------------------------------------------------------ #
    # Checkpoint-state building blocks (shared by UQMethod and the pipeline)
    # ------------------------------------------------------------------ #
    def _scaler_state(self) -> Optional[dict]:
        """JSON-able scaler statistics, or ``None`` when no scaler is fitted."""
        if self.scaler is None:
            return None
        return {"mean": self.scaler.mean_, "std": self.scaler.std_}

    def _restore_scaler(self, scaler_meta: Optional[dict]) -> None:
        """Rebuild the scaler from :meth:`_scaler_state` output (no-op on None)."""
        if scaler_meta is None:
            return
        self.scaler = StandardScaler()
        self.scaler.mean_ = float(scaler_meta["mean"])
        self.scaler.std_ = float(scaler_meta["std"])

    def _check_saved_backbone(self, meta: dict) -> None:
        """Reject state snapshots taken with a different backbone architecture."""
        own = getattr(self, "backbone_name", None)
        saved = meta.get("backbone", own)
        if own is not None and saved != own:
            raise ValueError(
                f"state was saved with backbone {saved!r}, "
                f"cannot restore into {own!r}"
            )

    # ------------------------------------------------------------------ #
    def predict(self, histories: np.ndarray, **kwargs):
        """Probabilistic forecast for raw history windows (original scale)."""
        raise NotImplementedError

    def predict_on(self, data: TrafficData, **kwargs):
        """Forecast every sliding window of ``data``; returns (result, targets).

        Keyword arguments are forwarded to :meth:`predict` (e.g.
        ``num_samples`` for the Monte-Carlo methods).
        """
        inputs, targets = self._windows(data)
        return self.predict(inputs, **kwargs), targets
