"""``repro.obs`` — tracing, per-tick phase profiling, structured logging.

The serving stack's measurement plane, four instruments behind one switch:

* **request tracing** (:mod:`repro.obs.trace`) — trace/span IDs minted at
  the gateway and by :meth:`~repro.fleet.StreamFleet.tick`, propagated via
  thread-local span stacks with explicit cross-thread handoff into the
  micro-batch workers; sampled spans land in a bounded
  :class:`~repro.obs.trace.TraceStore` ring served by ``GET /trace``;
* **phase profiling** (:mod:`repro.obs.profiler`) — named phase timers
  (``window_build`` ... ``checkpoint``) on the fleet tick and stream cores,
  aggregated into per-phase count/total/p50/p99 served by ``GET /profile``
  and merged into ``GET /metrics``;
* **structured logging** (:mod:`repro.obs.events`) — ``obs.log_event``
  JSON records with trace-ID correlation for drift events, refit
  lifecycle, promote/rollback and chaos injections;
* **metrics history + SLO engine** (:mod:`repro.obs.timeseries`,
  :mod:`repro.obs.slo`) — a bounded tick-stamped ring sampling the stack's
  counters/gauges, evaluated by declarative :class:`SLOSpec` objectives
  with multi-window burn-rate rules into a deterministic alert lifecycle
  (pending → firing → resolved) served by ``GET /alerts``, ``/metrics``
  ``ALERTS`` families and the ``GET /tail`` live event stream.

Everything is **off by default** and constant-time when off: instrumented
hot paths pay one flag check (plus a shared no-op context manager), so
tracing-disabled fleet ticks are bit-identical to an uninstrumented build.
Enable it all with::

    from repro import obs
    obs.configure(enabled=True, seed=0)         # deterministic sampling
    ...
    obs.trace_store().traces(limit=5)           # recent span trees
    print(obs.profiler().summary())             # per-phase breakdown

or per instrument via ``configure(tracing=..., profiling=..., logging=...)``.
Setting ``REPRO_OBS=1`` in the environment enables the whole layer at
import time (handy for examples and ad-hoc runs).
"""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.obs.events import (
    configure_logging,
    events_emitted,
    events_since,
    last_event_seq,
    log_event,
    logging_enabled,
    recent_events,
)
from repro.obs.profiler import (
    PHASES,
    PhaseProfiler,
    configure_profiling,
    phase,
    profiler,
    profiling_enabled,
    record_phase,
)
from repro.obs.slo import (
    Alert,
    SLOEngine,
    SLOSpec,
    default_slos,
    fleet_source,
    gateway_source,
    server_source,
)
from repro.obs.timeseries import MetricsHistory
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    SpanContext,
    TraceStore,
    configure_tracing,
    current_context,
    current_span,
    record_span,
    start_span,
    start_trace,
    trace_store,
    tracing_enabled,
)

__all__ = [
    "Alert",
    "MetricsHistory",
    "PHASES",
    "PhaseProfiler",
    "SLOEngine",
    "SLOSpec",
    "Span",
    "SpanContext",
    "TraceStore",
    "configure",
    "configure_logging",
    "configure_profiling",
    "configure_tracing",
    "current_context",
    "current_span",
    "default_slos",
    "enabled",
    "events_emitted",
    "events_since",
    "fleet_source",
    "gateway_source",
    "last_event_seq",
    "log_event",
    "logging_enabled",
    "phase",
    "profiler",
    "profiling_enabled",
    "recent_events",
    "record_phase",
    "record_span",
    "reset",
    "server_source",
    "start_span",
    "start_trace",
    "trace_store",
    "tracing_enabled",
]


def enabled() -> bool:
    """True when *any* obs instrument is live."""
    return tracing_enabled() or profiling_enabled() or logging_enabled()


def configure(
    enabled: Optional[bool] = None,
    tracing: Optional[bool] = None,
    profiling: Optional[bool] = None,
    logging: Optional[bool] = None,
    sample_rate: Optional[float] = None,
    seed: Optional[int] = None,
    trace_capacity: Optional[int] = None,
    sample_window: Optional[int] = None,
    log_sink: Any = None,
) -> None:
    """One-call switchboard for the whole observability layer.

    ``enabled`` flips tracing + profiling + logging together; the
    per-instrument flags override it.  ``seed`` makes head sampling (and
    span-ID minting) deterministic; ``sample_rate`` is the head-sampling
    fraction; ``log_sink`` replaces the structured-log sink (``False``
    silences it, keeping the in-memory ring).
    """
    if enabled is not None:
        tracing = enabled if tracing is None else tracing
        profiling = enabled if profiling is None else profiling
        logging = enabled if logging is None else logging
    configure_tracing(
        enabled=tracing, sample_rate=sample_rate, seed=seed, capacity=trace_capacity
    )
    configure_profiling(enabled=profiling, sample_window=sample_window)
    configure_logging(enabled=logging, sink=log_sink)


def reset() -> None:
    """Disable every instrument and drop collected spans/phases (tests)."""
    configure(enabled=False)
    trace_store().clear()
    profiler().reset()
    configure_logging(ring_size=1024)


if os.environ.get("REPRO_OBS", "").strip().lower() in ("1", "true", "yes", "on"):
    configure(enabled=True)
