"""Bounded in-process metrics history: tick-driven samples, window queries.

The obs layer's counters and gauges (server stats, stream monitors, gateway
latency summaries, the phase profiler) answer "what is the value *now*" —
an SLO engine needs "what happened over the last N ticks".
:class:`MetricsHistory` closes that gap without any external TSDB: named
*sources* (zero-argument callables returning flat ``{metric: float}`` dicts)
are polled on a deterministic tick-driven cadence by :meth:`sample`, and the
resulting ``(tick, values)`` rows land in a bounded ring.

Query surface, all over the most recent ``window`` samples:

* :meth:`latest` / :meth:`series` — point and windowed reads of one metric;
* :meth:`delta` — last-minus-first, the counter-increase primitive;
* :meth:`rate` — :meth:`delta` per tick;
* :meth:`values` — the raw windowed value list (gauge breach fractions).

Sampling is the only mutation and is driven by whoever owns the clock
(:meth:`StreamFleet.tick` in the serving stack, a plain loop in tests), so
a fixed-seed run produces bit-identical histories — there is no wall-clock
anywhere in the data path.  Non-finite source values are dropped at the
door: NaN warm-up gauges never enter a window, so downstream burn-rate
math (and the metric families rendered from it) stays NaN-free.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

__all__ = ["MetricsHistory", "MetricSource"]

#: A metrics source: zero-argument callable returning ``{metric: number}``.
MetricSource = Callable[[], Mapping[str, Any]]


class MetricsHistory:
    """Bounded ring of tick-stamped metric samples with window queries.

    Parameters
    ----------
    capacity:
        Samples retained; the oldest fall off as new ticks arrive, so memory
        stays bounded no matter how long the service runs.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._sources: Dict[str, MetricSource] = {}
        self._samples: deque = deque(maxlen=self.capacity)  # (tick, {name: value})
        self._source_errors = 0

    # ------------------------------------------------------------------ #
    # Sources
    # ------------------------------------------------------------------ #
    def add_source(self, name: str, source: MetricSource) -> None:
        """Register ``source`` under ``name`` (its metrics get ``name.`` prefixes).

        Re-registering an existing name replaces the source — the idempotent
        shape attach/restart paths need.
        """
        if not callable(source):
            raise TypeError(f"source {name!r} is not callable")
        with self._lock:
            self._sources[str(name)] = source

    def remove_source(self, name: str) -> None:
        with self._lock:
            self._sources.pop(str(name), None)

    def sources(self) -> List[str]:
        with self._lock:
            return sorted(self._sources)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(self, tick: int) -> Dict[str, float]:
        """Poll every source and append one ``(tick, values)`` row.

        A raising source contributes nothing to the row (counted in
        :attr:`stats` as ``source_errors``) — one broken stats provider must
        not take the whole history down.  Values that are not finite numbers
        are skipped, so windows only ever hold real floats.
        """
        with self._lock:
            sources = list(self._sources.items())
        values: Dict[str, float] = {}
        errors = 0
        for name, source in sources:
            try:
                metrics = source()
            except Exception:
                errors += 1
                continue
            for key, raw in metrics.items():
                try:
                    value = float(raw)
                except (TypeError, ValueError):
                    continue
                if math.isfinite(value):
                    values[f"{name}.{key}"] = value
        with self._lock:
            self._samples.append((int(tick), values))
            self._source_errors += errors
        return values

    def record(self, tick: int, values: Mapping[str, Any]) -> None:
        """Append one externally-built row (tests, ad-hoc backfills)."""
        clean = {
            str(key): float(value)
            for key, value in values.items()
            if isinstance(value, (int, float)) and math.isfinite(float(value))
        }
        with self._lock:
            self._samples.append((int(tick), clean))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    @property
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "samples": len(self._samples),
                "capacity": self.capacity,
                "sources": len(self._sources),
                "source_errors": self._source_errors,
                "last_tick": self._samples[-1][0] if self._samples else -1,
            }

    def names(self) -> List[str]:
        """Metric names present in the most recent sample (sorted)."""
        with self._lock:
            if not self._samples:
                return []
            return sorted(self._samples[-1][1])

    def _recent(self, window: Optional[int]) -> List[Tuple[int, Dict[str, float]]]:
        with self._lock:
            rows = list(self._samples)
        if window is not None:
            rows = rows[-max(int(window), 0):]
        return rows

    def latest(self, metric: str) -> Optional[float]:
        """Most recent recorded value of ``metric`` (``None`` if never seen)."""
        for _, values in reversed(self._recent(None)):
            if metric in values:
                return values[metric]
        return None

    def series(self, metric: str, window: Optional[int] = None) -> List[Tuple[int, float]]:
        """``(tick, value)`` points of ``metric`` over the last ``window`` samples."""
        return [
            (tick, values[metric])
            for tick, values in self._recent(window)
            if metric in values
        ]

    def values(self, metric: str, window: Optional[int] = None) -> List[float]:
        """Just the values of :meth:`series` (gauge breach-fraction input)."""
        return [value for _, value in self.series(metric, window)]

    def delta(self, metric: str, window: Optional[int] = None) -> float:
        """Last minus first value over the window (0.0 with < 2 points).

        The counter primitive: with cumulative sources, ``delta`` is "how
        much did this counter increase over the last ``window`` samples".
        """
        points = self.series(metric, window)
        if len(points) < 2:
            return 0.0
        return points[-1][1] - points[0][1]

    def counter_delta(self, metric: str, window: Optional[int] = None) -> float:
        """:meth:`delta` for counters that may not exist from the start.

        Per-kind counters (the fleet's ``events.<kind>`` families) only
        appear in sampled rows once the first event of that kind lands, so
        plain :meth:`delta` misses the very increment that created the
        series.  Here, window rows sampled *before* the metric's first
        point count as implicit zeros — the 0 → N appearance reads as an
        increase of N.  Rows only read as implicit zeros when they exist
        without the metric; attaching to a long-lived process mid-run
        contributes no such rows, so a pre-existing cumulative total is a
        baseline, not a burst.
        """
        rows = self._recent(window)
        points = [(tick, row[metric]) for tick, row in rows if metric in row]
        if not points:
            return 0.0
        if rows[0][0] < points[0][0]:
            return points[-1][1]  # sprang into existence mid-window
        if len(points) < 2:
            return 0.0
        return points[-1][1] - points[0][1]

    def rate(self, metric: str, window: Optional[int] = None) -> float:
        """:meth:`delta` per tick over the window (0.0 with < 2 points)."""
        points = self.series(metric, window)
        if len(points) < 2:
            return 0.0
        ticks = points[-1][0] - points[0][0]
        if ticks <= 0:
            return 0.0
        return (points[-1][1] - points[0][1]) / ticks

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()

    def __repr__(self) -> str:
        stats = self.stats
        return (
            f"MetricsHistory({stats['samples']}/{stats['capacity']} samples, "
            f"{stats['sources']} sources, last_tick={stats['last_tick']})"
        )
