"""SLO engine: declarative objectives, burn-rate evaluation, alert lifecycle.

PR 8 made the stack measurable; this module makes it *self-aware*.  A
:class:`SLOSpec` declares one service-level objective over metrics recorded
in a :class:`~repro.obs.timeseries.MetricsHistory` — availability ratios,
latency/coverage bounds, zero-drop counters — and the :class:`SLOEngine`
evaluates every spec each tick with the classic **multi-window burn-rate
rule**: the fraction of the error budget being consumed must exceed the
threshold over *both* a long window (statistical confidence) and a short
window (fast reset once the incident ends) before an alert moves.

Alert lifecycle is a deterministic state machine driven purely by tick
indices and sampled values — no wall clock, no RNG — so a fixed-seed chaos
scenario fires and resolves the same alerts at the same ticks every run::

    inactive ──breach──▶ pending ──for_ticks held──▶ firing
        ▲                   │                          │
        └──────recovered────┘          recovered──▶ resolved ──breach──▶ pending

``resolved`` is sticky (an alert that has fired and recovered displays as
resolved, not as never-fired) and every transition emits one structured
``slo.alert_*`` event via :func:`repro.obs.log_event`, carrying the active
trace ID — the gateway's ``GET /tail`` stream shows alerts move live.

Objective kinds, all reduced to a *bad fraction* over a window so one burn
rate formula (``bad_fraction / (1 - target)``) covers them:

* ``ratio`` — ``good`` / ``total`` cumulative counters (availability): the
  bad fraction is the windowed failure share of the windowed traffic;
* ``upper`` / ``lower`` — a gauge must stay below / above ``bound`` (p99
  latency, per-stream PICP coverage): the bad fraction is the share of
  window samples violating the bound;
* ``zero`` — a cumulative counter must not increase at all (drops): any
  windowed increase is a bad fraction of 1.0.

``metric`` may contain ``*`` wildcards (``fleet.stream.*.coverage``); the
engine expands them against the recorded metric names, one independent
alert per concrete series.
"""

from __future__ import annotations

import fnmatch
import threading
from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import log_event
from repro.obs.timeseries import MetricsHistory

__all__ = [
    "Alert",
    "SLOEngine",
    "SLOSpec",
    "default_slos",
    "fleet_source",
    "gateway_source",
    "server_source",
]

#: Alert lifecycle states, in escalation order.
ALERT_STATES = ("inactive", "pending", "firing", "resolved")

#: Spec kinds understood by the evaluator.
SLO_KINDS = ("ratio", "upper", "lower", "zero")

#: Alert severities; ``page`` degrades ``/healthz`` while firing.
SEVERITIES = ("ticket", "page")


@dataclass(frozen=True)
class SLOSpec:
    """One declarative service-level objective.

    Parameters
    ----------
    name:
        Unique objective name (``availability``, ``p99_latency``, ...).
    kind:
        ``ratio`` | ``upper`` | ``lower`` | ``zero`` (see module docstring).
    target:
        Objective as a good fraction in ``(0, 1)``; the error budget is
        ``1 - target``.  ``target=0.95`` tolerates 5 % bad samples.
    metric:
        Series name for ``upper`` / ``lower`` / ``zero`` kinds; ``*``
        wildcards expand against recorded names, one alert per match.
    good, total:
        Cumulative counter names for the ``ratio`` kind.
    bound:
        The gauge bound for ``upper`` / ``lower`` kinds.
    long_window, short_window:
        Burn-rate windows in *samples* (= ticks at the default cadence).
    burn_threshold:
        Budget-consumption multiple both windows must exceed to breach;
        1.0 means "burning budget exactly at the sustainable rate".
    for_ticks:
        Ticks a breach must hold in ``pending`` before the alert fires
        (0 = fire on the evaluation that breaches).
    severity:
        ``ticket`` (default) or ``page`` — paging alerts degrade
        ``/healthz`` to 503 while firing.
    """

    name: str
    kind: str
    target: float = 0.99
    metric: Optional[str] = None
    good: Optional[str] = None
    total: Optional[str] = None
    bound: Optional[float] = None
    long_window: int = 20
    short_window: int = 5
    burn_threshold: float = 1.0
    for_ticks: int = 0
    severity: str = "ticket"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLOSpec needs a non-empty name")
        if self.kind not in SLO_KINDS:
            raise ValueError(f"kind must be one of {SLO_KINDS}, got {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must lie in (0, 1)")
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}")
        if self.long_window < 2 or not 1 <= self.short_window <= self.long_window:
            raise ValueError(
                "windows must satisfy 1 <= short_window <= long_window and "
                "long_window >= 2"
            )
        if self.burn_threshold <= 0.0 or self.for_ticks < 0:
            raise ValueError("burn_threshold must be > 0 and for_ticks >= 0")
        if self.kind == "ratio":
            if not self.good or not self.total:
                raise ValueError("ratio specs need 'good' and 'total' counter names")
        else:
            if not self.metric:
                raise ValueError(f"{self.kind} specs need a 'metric' name")
        if self.kind in ("upper", "lower") and self.bound is None:
            raise ValueError(f"{self.kind} specs need a 'bound'")

    @property
    def budget(self) -> float:
        """The error budget: tolerable bad fraction."""
        return 1.0 - self.target

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "metric": self.metric,
            "good": self.good,
            "total": self.total,
            "bound": self.bound,
            "long_window": self.long_window,
            "short_window": self.short_window,
            "burn_threshold": self.burn_threshold,
            "for_ticks": self.for_ticks,
            "severity": self.severity,
            "description": self.description,
        }

    # ------------------------------------------------------------------ #
    # Evaluation primitives
    # ------------------------------------------------------------------ #
    def bad_fraction(
        self, history: MetricsHistory, series: str, window: int
    ) -> float:
        """The objective's bad fraction over the last ``window`` samples."""
        if self.kind == "ratio":
            total = history.counter_delta(self.total, window)
            if total <= 0.0:
                return 0.0  # no traffic burns no budget
            good = history.counter_delta(self.good, window)
            return min(max(1.0 - good / total, 0.0), 1.0)
        if self.kind == "zero":
            # counter_delta, not delta: the first event of a kind *creates*
            # its series, and that 0 -> N appearance must read as a breach.
            return 1.0 if history.counter_delta(series, window) > 0.0 else 0.0
        values = history.values(series, window)
        if not values:
            return 0.0
        if self.kind == "upper":
            bad = sum(1 for value in values if value > self.bound)
        else:  # lower
            bad = sum(1 for value in values if value < self.bound)
        return bad / len(values)

    def burn_rate(
        self, history: MetricsHistory, series: str, window: int
    ) -> float:
        """Error-budget consumption multiple over ``window`` samples."""
        return self.bad_fraction(history, series, window) / self.budget

    def expand(self, history: MetricsHistory) -> List[str]:
        """Concrete series names this spec currently evaluates over."""
        if self.kind == "ratio":
            return [self.name]  # counters are named explicitly; one series
        if "*" not in self.metric and "?" not in self.metric:
            return [self.metric]
        return sorted(fnmatch.filter(history.names(), self.metric))


class Alert:
    """Lifecycle state of one (spec, series) pair.

    Pure tick-index bookkeeping: :meth:`update` is called once per
    evaluation with the breach verdict and moves the state machine,
    returning the transition performed (``None`` when nothing moved).
    """

    __slots__ = (
        "spec", "series", "state", "pending_since", "fired_at",
        "resolved_at", "burn_long", "burn_short", "transitions",
    )

    def __init__(self, spec: SLOSpec, series: str) -> None:
        self.spec = spec
        self.series = series
        self.state = "inactive"
        self.pending_since: Optional[int] = None
        self.fired_at: Optional[int] = None
        self.resolved_at: Optional[int] = None
        self.burn_long = 0.0
        self.burn_short = 0.0
        self.transitions = 0

    def update(self, tick: int, breached: bool) -> Optional[str]:
        """Advance one evaluation; returns ``pending``/``firing``/``resolved``
        when the state moved this tick, else ``None``."""
        if breached:
            if self.state in ("inactive", "resolved"):
                self.state = "pending"
                self.pending_since = tick
                self.transitions += 1
                # for_ticks == 0 escalates in this same evaluation below,
                # still reporting the pending transition first via the engine.
                return "pending"
            if (
                self.state == "pending"
                and tick - self.pending_since >= self.spec.for_ticks
            ):
                self.state = "firing"
                self.fired_at = tick
                self.transitions += 1
                return "firing"
            return None
        if self.state == "pending":
            # A breach that never fired quietly stands down.
            self.state = "resolved" if self.resolved_at is not None else "inactive"
            self.pending_since = None
            self.transitions += 1
            return None
        if self.state == "firing":
            self.state = "resolved"
            self.resolved_at = tick
            self.transitions += 1
            return "resolved"
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.spec.name,
            "series": self.series,
            "severity": self.spec.severity,
            "state": self.state,
            "pending_since": self.pending_since,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "burn_long": self.burn_long,
            "burn_short": self.burn_short,
            "burn_threshold": self.spec.burn_threshold,
            "transitions": self.transitions,
        }


class SLOEngine:
    """Evaluates :class:`SLOSpec` objectives over a metrics history.

    One engine owns one :class:`MetricsHistory`; :meth:`step` is the whole
    per-tick API — sample every source, evaluate every spec, move every
    alert, emit one ``slo.alert_*`` event per transition.  Everything is
    thread-safe (the gateway's read surfaces race the fleet's tick thread)
    and deterministic given the sampled values.
    """

    def __init__(
        self,
        specs: Sequence[SLOSpec] = (),
        history: Optional[MetricsHistory] = None,
        transition_history: int = 256,
    ) -> None:
        if transition_history < 1:
            raise ValueError("transition_history must be >= 1")
        self.history = history if history is not None else MetricsHistory()
        self._lock = threading.Lock()
        self._specs: Dict[str, SLOSpec] = {}
        self._alerts: Dict[Tuple[str, str], Alert] = {}
        self._transitions: deque = deque(maxlen=int(transition_history))
        self._transition_counts: Counter = Counter()  # (slo, state) -> count
        self._evaluations = 0
        self._last_tick = -1
        for spec in specs:
            self.add_spec(spec)

    # ------------------------------------------------------------------ #
    # Spec registry
    # ------------------------------------------------------------------ #
    def add_spec(self, spec: SLOSpec) -> None:
        if not isinstance(spec, SLOSpec):
            raise TypeError(f"expected an SLOSpec, got {type(spec).__name__}")
        with self._lock:
            if spec.name in self._specs:
                raise ValueError(f"an SLO named {spec.name!r} already exists")
            self._specs[spec.name] = spec

    def specs(self) -> List[SLOSpec]:
        with self._lock:
            return list(self._specs.values())

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def step(self, tick: int) -> List[Dict[str, Any]]:
        """Sample all sources at ``tick``, then evaluate; the per-tick call."""
        self.history.sample(tick)
        return self.evaluate(tick)

    def evaluate(self, tick: int) -> List[Dict[str, Any]]:
        """Evaluate every spec against the current history.

        Returns the transition records performed this evaluation (also
        retained in :meth:`transitions` and emitted as structured events).
        """
        tick = int(tick)
        performed: List[Dict[str, Any]] = []
        with self._lock:
            specs = list(self._specs.values())
            self._evaluations += 1
            self._last_tick = tick
        for spec in specs:
            for series in spec.expand(self.history):
                burn_long = spec.burn_rate(self.history, series, spec.long_window)
                burn_short = spec.burn_rate(self.history, series, spec.short_window)
                breached = (
                    burn_long >= spec.burn_threshold
                    and burn_short >= spec.burn_threshold
                )
                key = (spec.name, series)
                with self._lock:
                    alert = self._alerts.get(key)
                    if alert is None:
                        alert = self._alerts[key] = Alert(spec, series)
                alert.burn_long = burn_long
                alert.burn_short = burn_short
                # A fresh breach may legitimately move twice in one
                # evaluation (pending then firing, when for_ticks == 0).
                for _ in range(2):
                    moved = alert.update(tick, breached)
                    if moved is None:
                        break
                    performed.append(self._record_transition(alert, moved, tick))
                    if moved != "pending" or spec.for_ticks > 0:
                        break
        return performed

    def _record_transition(self, alert: Alert, state: str, tick: int) -> Dict[str, Any]:
        record = {
            "tick": tick,
            "state": state,
            "slo": alert.spec.name,
            "series": alert.series,
            "severity": alert.spec.severity,
            "burn_long": alert.burn_long,
            "burn_short": alert.burn_short,
        }
        with self._lock:
            self._transitions.append(record)
            self._transition_counts[(alert.spec.name, state)] += 1
        log_event(
            f"slo.alert_{state}",
            message=(
                f"SLO {alert.spec.name!r} [{alert.series}] {state} at tick "
                f"{tick} (burn {alert.burn_long:.2f}/{alert.burn_short:.2f} "
                f"vs {alert.spec.burn_threshold:.2f})"
            ),
            **record,
        )
        return record

    # ------------------------------------------------------------------ #
    # Read surfaces
    # ------------------------------------------------------------------ #
    def alerts(self) -> List[Alert]:
        with self._lock:
            return list(self._alerts.values())

    def firing(self, severity: Optional[str] = None) -> List[Alert]:
        """Alerts currently in the ``firing`` state (optionally by severity)."""
        return [
            alert
            for alert in self.alerts()
            if alert.state == "firing"
            and (severity is None or alert.spec.severity == severity)
        ]

    def page_firing(self) -> bool:
        """True while any page-severity alert is firing (degrades healthz)."""
        return bool(self.firing(severity="page"))

    def transitions(self, limit: int = 100) -> List[Dict[str, Any]]:
        """The most recent transition records, oldest first."""
        with self._lock:
            records = list(self._transitions)
        return records[-max(int(limit), 0):]

    @property
    def evaluations(self) -> int:
        """Evaluation passes completed (monotonic counter)."""
        with self._lock:
            return self._evaluations

    def transition_counts(self) -> Dict[Tuple[str, str], int]:
        """Monotonic ``(slo, state) -> transitions`` counters (metrics feed)."""
        with self._lock:
            return dict(self._transition_counts)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state for ``GET /alerts``."""
        with self._lock:
            evaluations = self._evaluations
            last_tick = self._last_tick
        return {
            "evaluations": evaluations,
            "last_tick": last_tick,
            "specs": [spec.to_dict() for spec in self.specs()],
            "alerts": [alert.to_dict() for alert in self.alerts()],
            "firing": [alert.to_dict() for alert in self.firing()],
            "transitions": self.transitions(),
            "history": self.history.stats,
        }

    def __repr__(self) -> str:
        firing = len(self.firing())
        return (
            f"SLOEngine({len(self.specs())} specs, {len(self.alerts())} alerts, "
            f"{firing} firing, last_tick={self._last_tick})"
        )


# --------------------------------------------------------------------------- #
# Metric sources over the serving stack
# --------------------------------------------------------------------------- #
def server_source(server: Any):
    """Numeric scalars of :attr:`InferenceServer.stats` (counters + gauges)."""

    def sample() -> Dict[str, float]:
        return {
            key: value
            for key, value in server.stats.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }

    return sample


def fleet_source(fleet: Any):
    """Per-stream monitor gauges + per-kind event counters of one fleet.

    Emits ``stream.<name>.<metric>`` rolling-monitor gauges (coverage, MAE,
    ...), cumulative ``events.<kind>`` counters over the fleet-level event
    log and ``stream_events.<kind>`` counters over the per-stream logs —
    zero-drop SLOs watch ``events.stream_predict_failed``.
    """

    def sample() -> Dict[str, float]:
        values: Dict[str, float] = {"tick": float(fleet._tick)}
        for kind, count in Counter(
            event.kind for event in fleet.event_log.events
        ).items():
            values[f"events.{kind}"] = float(count)
        stream_kinds: Counter = Counter()
        for name, stream in fleet.streams.items():
            snapshot = stream.core.monitor.snapshot()
            for key in ("coverage", "mae", "rmse", "mean_width", "winkler"):
                if key in snapshot:
                    values[f"stream.{name}.{key}"] = snapshot[key]
            values[f"stream.{name}.steps"] = float(stream.core.step)
            stream_kinds.update(event.kind for event in stream.core.event_log.events)
        for kind, count in stream_kinds.items():
            values[f"stream_events.{kind}"] = float(count)
        return values

    return sample


def gateway_source(gateway: Any):
    """Request totals + per-route p99 latency from the gateway's metrics."""

    def sample() -> Dict[str, float]:
        metrics = gateway.metrics
        snapshot = metrics.snapshot()
        values: Dict[str, float] = {
            "requests_total": float(snapshot["requests_total"]),
            "errors_total": float(snapshot["errors_total"]),
            "ok_total": float(snapshot["requests_total"] - snapshot["errors_total"]),
        }
        for route in metrics.routes():
            values[f"p99{route}"] = metrics.quantile(route, 0.99)
        return values

    return sample


def default_slos(
    coverage_target: float = 0.80,
    coverage_bound: float = 0.85,
    p99_bound_s: float = 0.5,
    availability: float = 0.99,
) -> List[SLOSpec]:
    """A practical starter set over the standard source names.

    Assumes sources registered as ``gateway`` (:func:`gateway_source`),
    ``fleet`` (:func:`fleet_source`) and ``server`` (:func:`server_source`) —
    the wiring :meth:`StreamFleet.attach_slo` and :class:`Gateway` perform.
    """
    return [
        SLOSpec(
            name="availability",
            kind="ratio",
            good="gateway.ok_total",
            total="gateway.requests_total",
            target=availability,
            long_window=20,
            short_window=5,
            severity="page",
            description="HTTP requests answered without an error status.",
        ),
        SLOSpec(
            name="predict_p99_latency",
            kind="upper",
            metric="gateway.p99/predict",
            bound=p99_bound_s,
            target=0.90,
            long_window=20,
            short_window=5,
            description=f"/predict p99 stays under {p99_bound_s * 1e3:.0f} ms.",
        ),
        SLOSpec(
            name="stream_coverage",
            kind="lower",
            metric="fleet.stream.*.coverage",
            bound=coverage_bound,
            target=coverage_target,
            long_window=16,
            short_window=4,
            for_ticks=2,
            severity="page",
            description="Per-stream rolling PICP stays above the floor.",
        ),
        SLOSpec(
            name="zero_drop",
            kind="zero",
            metric="fleet.events.stream_predict_failed",
            target=0.999,
            long_window=8,
            short_window=2,
            severity="page",
            description="No stream predict may fail (drops are incidents).",
        ),
    ]
