"""Per-tick phase profiler: named timers aggregated into phase histograms.

The fleet tick is the system's inner loop; before attacking its hot path we
need to know *where inside a tick* time goes.  :class:`PhaseProfiler` keeps,
per named phase (``window_build``, ``batch_wait``, ``model_forward``,
``unscale``, ``aci_update``, ``monitor_update``, ``drift_detect``,
``spatial_agg``, ``checkpoint``):

* an exact running ``count`` and ``total`` seconds (monotonic — what the
  Prometheus ``_count`` / ``_sum`` series render);
* a bounded ring of the most recent samples for p50/p99 readouts.

Instrumented code uses the module-level :func:`phase` context manager (or
:func:`record_phase` when it already timed the interval itself — the batch
worker's shape).  Both are constant-time no-ops while profiling is disabled:
one flag check, one shared inert context manager, no allocation — the same
discipline as :mod:`repro.obs.trace`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "PHASES",
    "PhaseProfiler",
    "configure_profiling",
    "phase",
    "profiler",
    "profiling_enabled",
    "record_phase",
]

#: The canonical tick phases, in hot-path order (custom names are accepted
#: too; this tuple fixes the ordering of summary renderings).
PHASES = (
    "window_build",
    "batch_wait",
    "model_forward",
    "unscale",
    "aci_update",
    "monitor_update",
    "drift_detect",
    "spatial_agg",
    "checkpoint",
    "slo_eval",
)


class _PhaseStat:
    """Accumulator for one phase: exact count/total + a sample ring."""

    __slots__ = ("count", "total", "samples")

    def __init__(self, sample_window: int) -> None:
        self.count = 0
        self.total = 0.0
        self.samples: deque = deque(maxlen=sample_window)

    def quantile(self, q: float) -> float:
        if not self.samples:
            return float("nan")
        ordered = sorted(self.samples)
        index = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[index]


class _PhaseTimer:
    """Context manager timing one phase occurrence (re-entrant per use)."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler.record(self._name, time.perf_counter() - self._start)


class _NoopTimer:
    """Shared inert timer returned while profiling is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_TIMER = _NoopTimer()


class PhaseProfiler:
    """Thread-safe aggregation of named phase timings.

    ``sample_window`` bounds the per-phase quantile ring; count/total stay
    exact forever.  One instance is process-global (:func:`profiler`) — the
    fleet tick, the stream cores and the inference server all feed it, so
    one :meth:`snapshot` is the whole per-tick cost breakdown.
    """

    #: Bound on remembered :meth:`delta` consumer keys (oldest evicted).
    MAX_DELTA_KEYS = 64

    def __init__(self, sample_window: int = 4096) -> None:
        if sample_window < 1:
            raise ValueError("sample_window must be >= 1")
        self.sample_window = int(sample_window)
        self._lock = threading.Lock()
        self._phases: Dict[str, _PhaseStat] = {}
        # delta-consumer key -> {phase: (count, total)} at its last read
        self._baselines: "OrderedDict[str, Dict[str, Tuple[int, float]]]" = (
            OrderedDict()
        )

    def record(self, name: str, seconds: float, count: int = 1) -> None:
        """Fold ``count`` occurrences totalling ``seconds`` into ``name``.

        With ``count > 1`` the ring receives one sample — the *mean*
        occurrence — so aggregate records (a whole batch's wait) do not
        flood the quantile window.
        """
        seconds = float(seconds)
        with self._lock:
            stat = self._phases.get(name)
            if stat is None:
                stat = self._phases[name] = _PhaseStat(self.sample_window)
            stat.count += int(count)
            stat.total += seconds
            stat.samples.append(seconds / count if count > 1 else seconds)

    def phase(self, name: str) -> _PhaseTimer:
        return _PhaseTimer(self, name)

    def reset(self) -> None:
        with self._lock:
            self._phases.clear()
            self._baselines.clear()

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready ``{phase: {count, total_s, mean_ms, p50_ms, p99_ms}}``.

        Phases render in :data:`PHASES` order first, then any custom names
        alphabetically.
        """
        with self._lock:
            items = {
                name: (stat.count, stat.total, stat.quantile(0.50), stat.quantile(0.99))
                for name, stat in self._phases.items()
            }
        known = [name for name in PHASES if name in items]
        extra = sorted(set(items) - set(PHASES))
        out: Dict[str, Dict[str, float]] = {}
        for name in known + extra:
            count, total, p50, p99 = items[name]
            out[name] = {
                "count": count,
                "total_s": total,
                "mean_ms": (total / count * 1e3) if count else float("nan"),
                "p50_ms": p50 * 1e3,
                "p99_ms": p99 * 1e3,
            }
        return out

    def delta(self, key: str = "default") -> Dict[str, Dict[str, float]]:
        """Interval snapshot since this ``key``'s previous :meth:`delta` call.

        Each consumer (a Prometheus scraper, a dashboard poller) passes its
        own ``key`` and receives the count/total/mean accumulated *since its
        last read* — successive scrapes report the interval, not lifetime
        totals.  The first call for a key covers everything so far.
        ``p50_ms`` / ``p99_ms`` remain the rolling-ring quantiles (quantiles
        do not difference), and phases idle over the interval are omitted.
        Baselines for at most :data:`MAX_DELTA_KEYS` consumers are retained;
        the least recently read is forgotten (its next read starts over).
        """
        key = str(key)
        with self._lock:
            current = {
                name: (stat.count, stat.total, stat.quantile(0.50), stat.quantile(0.99))
                for name, stat in self._phases.items()
            }
            baseline = self._baselines.pop(key, {})
            self._baselines[key] = {
                name: (count, total) for name, (count, total, _, _) in current.items()
            }
            while len(self._baselines) > self.MAX_DELTA_KEYS:
                self._baselines.popitem(last=False)
        known = [name for name in PHASES if name in current]
        extra = sorted(set(current) - set(PHASES))
        out: Dict[str, Dict[str, float]] = {}
        for name in known + extra:
            count, total, p50, p99 = current[name]
            base_count, base_total = baseline.get(name, (0, 0.0))
            d_count = count - base_count
            d_total = total - base_total
            if d_count <= 0:
                continue
            out[name] = {
                "count": d_count,
                "total_s": d_total,
                "mean_ms": d_total / d_count * 1e3,
                "p50_ms": p50 * 1e3,
                "p99_ms": p99 * 1e3,
            }
        return out

    def summary(self) -> str:
        """Fixed-width text breakdown, phases sorted by total cost."""
        snap = self.snapshot()
        if not snap:
            return "(no phases recorded)"
        rows = sorted(snap.items(), key=lambda item: -item[1]["total_s"])
        grand_total = sum(entry["total_s"] for _, entry in rows) or float("nan")
        lines = [
            f"{'phase':<16} {'count':>8} {'total (s)':>10} {'share':>7} "
            f"{'mean (ms)':>10} {'p50 (ms)':>9} {'p99 (ms)':>9}"
        ]
        for name, entry in rows:
            lines.append(
                f"{name:<16} {entry['count']:>8} {entry['total_s']:>10.4f} "
                f"{entry['total_s'] / grand_total * 100.0:>6.1f}% "
                f"{entry['mean_ms']:>10.4f} {entry['p50_ms']:>9.4f} "
                f"{entry['p99_ms']:>9.4f}"
            )
        return "\n".join(lines)

    def top_phases(self, n: int = 3) -> List[str]:
        """The ``n`` most expensive phase names by total seconds."""
        snap = self.snapshot()
        ranked = sorted(snap.items(), key=lambda item: -item[1]["total_s"])
        return [name for name, _ in ranked[:n]]


# --------------------------------------------------------------------------- #
# Process-global state
# --------------------------------------------------------------------------- #
_PROFILER = PhaseProfiler()
_enabled = False


def profiling_enabled() -> bool:
    return _enabled


def profiler() -> PhaseProfiler:
    return _PROFILER


def configure_profiling(
    enabled: Optional[bool] = None,
    sample_window: Optional[int] = None,
) -> None:
    """(Re)configure profiling; ``sample_window`` rebuilds the aggregator."""
    global _enabled, _PROFILER
    if enabled is not None:
        _enabled = bool(enabled)
    if sample_window is not None:
        _PROFILER = PhaseProfiler(sample_window=sample_window)


def phase(name: str):
    """Time one phase occurrence: ``with obs.phase("aci_update"): ...``.

    Returns the shared no-op timer while profiling is disabled — safe (and
    near-free) to leave in the hottest per-stream loops.
    """
    if not _enabled:
        return _NOOP_TIMER
    return _PROFILER.phase(name)


def record_phase(name: str, seconds: float, count: int = 1) -> None:
    """Fold an already-measured interval in (no-op while disabled)."""
    if _enabled:
        _PROFILER.record(name, seconds, count=count)
