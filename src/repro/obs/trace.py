"""Trace context: spans, thread-local stacks, cross-thread handoff, storage.

One *trace* is the tree of timed *spans* a single request (or one fleet
tick) produced as it moved through the serving stack.  Trace/span IDs are
minted at the edges — the gateway's HTTP handler, or
:meth:`~repro.fleet.StreamFleet.tick` — and propagated via a thread-local
span stack: :func:`start_span` parents itself under whatever span is active
on the current thread, so synchronous call chains nest for free.

The serving path is *not* synchronous: a request submitted on an HTTP
handler thread is executed by a micro-batch worker thread.  The handoff is
explicit — the submitter captures :func:`current_context` into the queued
request, and the worker records its batch/model spans with that context as
``parent`` (see :func:`record_span`), so the batch-execution span correctly
parents under the span that submitted it even though the two never share a
thread.

Finished spans of *sampled* traces land in the process-global
:class:`TraceStore`, a bounded thread-safe ring buffer: old traces fall off
the back, memory stays bounded no matter how long the service runs.  Head
sampling is decided once per trace at mint time from a seeded RNG stream, so
a fixed-seed run samples the same traces every time.

Everything here is allocation-free when tracing is disabled:
:func:`start_trace` / :func:`start_span` return a shared no-op span and
:func:`current_context` returns ``None`` after a single flag check.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Span",
    "SpanContext",
    "TraceStore",
    "configure_tracing",
    "current_context",
    "record_span",
    "start_span",
    "start_trace",
    "trace_store",
    "tracing_enabled",
]


@dataclass(frozen=True)
class SpanContext:
    """The minimal handle one thread hands another: where to parent.

    ``sampled`` carries the trace's head-sampling verdict along, so work done
    on behalf of an unsampled trace skips span recording entirely.
    """

    trace_id: str
    span_id: str
    sampled: bool = True


class Span:
    """One named, timed operation inside a trace.

    Spans are mutable while open (attributes accrue, ``end`` is stamped on
    close) and treated as immutable once handed to the :class:`TraceStore`.
    Timestamps are ``time.perf_counter()`` values — monotonic and
    comparable across threads within one process — plus a wall-clock
    ``wall_start`` for display.
    """

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name",
        "start", "end", "wall_start", "thread", "attrs",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = time.perf_counter() if start is None else float(start)
        self.end = end
        self.wall_start = time.time()
        self.thread = threading.current_thread().name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}

    # -- context-manager surface (used via start_trace / start_span) ----- #
    def __enter__(self) -> "Span":
        _push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.finish()
        _pop(self)

    def finish(self, end: Optional[float] = None) -> "Span":
        if self.end is None:
            self.end = time.perf_counter() if end is None else float(end)
            _STORE.add(self)
        return self

    def set_attr(self, key: str, value: Any) -> "Span":
        self.attrs[str(key)] = value
        return self

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id, sampled=True)

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready record (durations in milliseconds)."""
        duration = self.duration
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "thread": self.thread,
            "wall_start": self.wall_start,
            "duration_ms": None if duration is None else duration * 1e3,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        duration = self.duration
        timing = f"{duration * 1e3:.2f}ms" if duration is not None else "open"
        return f"Span({self.name!r}, trace={self.trace_id}, {timing})"


class _NoopSpan:
    """Shared inert span: what the tracing API returns while disabled.

    Supports the same surface as :class:`Span` (context manager, ``set_attr``,
    ``finish``) so instrumented code needs no enabled/disabled branches; every
    method is a constant-time no-op on one shared instance.
    """

    __slots__ = ()

    trace_id = None
    span_id = None
    parent_id = None
    name = ""
    attrs: Dict[str, Any] = {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def finish(self, end: Optional[float] = None) -> "_NoopSpan":
        return self

    def set_attr(self, key: str, value: Any) -> "_NoopSpan":
        return self

    @property
    def context(self) -> None:
        return None

    def __repr__(self) -> str:
        return "Span(<noop>)"


NOOP_SPAN = _NoopSpan()


class TraceStore:
    """Bounded, thread-safe ring buffer of finished spans, grouped by trace.

    ``capacity`` bounds the number of *spans* retained; when the ring wraps,
    the oldest spans (and eventually whole traces) fall off.  Grouping by
    trace keeps :meth:`traces` cheap: an :class:`OrderedDict` keyed by trace
    ID, freshest trace last.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._spans: "OrderedDict[str, List[Span]]" = OrderedDict()
        self._count = 0
        self._added = 0
        self._evicted = 0

    def add(self, span: Span) -> None:
        with self._lock:
            bucket = self._spans.get(span.trace_id)
            if bucket is None:
                bucket = self._spans[span.trace_id] = []
            else:
                self._spans.move_to_end(span.trace_id)
            bucket.append(span)
            self._count += 1
            self._added += 1
            while self._count > self.capacity:
                oldest_id, oldest = next(iter(self._spans.items()))
                evicted = oldest.pop(0)
                self._count -= 1
                self._evicted += 1
                if not oldest:
                    del self._spans[oldest_id]
                del evicted

    def __len__(self) -> int:
        with self._lock:
            return self._count

    @property
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "spans_stored": self._count,
                "traces_stored": len(self._spans),
                "spans_added": self._added,
                "spans_evicted": self._evicted,
            }

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._count = 0

    def spans(self, trace_id: str) -> List[Span]:
        with self._lock:
            return list(self._spans.get(trace_id, ()))

    def trace_ids(self) -> List[str]:
        """Stored trace IDs, most recent last."""
        with self._lock:
            return list(self._spans)

    def traces(self, limit: int = 20) -> List[Dict[str, Any]]:
        """The ``limit`` most recent traces as JSON-ready span trees.

        Each trace renders as ``{"trace_id", "root", "spans"}`` where every
        span record carries a ``children`` list; spans whose parent fell off
        the ring (or was never recorded) surface as extra roots under a
        synthetic top-level list, so a partially evicted trace still renders.
        """
        with self._lock:
            recent = list(self._spans.items())[-max(int(limit), 0):]
            recent = [(trace_id, list(spans)) for trace_id, spans in recent]
        out: List[Dict[str, Any]] = []
        for trace_id, spans in reversed(recent):  # freshest first
            records = {span.span_id: span.to_dict() for span in spans}
            for record in records.values():
                record["children"] = []
            roots: List[Dict[str, Any]] = []
            for span in spans:
                record = records[span.span_id]
                parent = records.get(span.parent_id) if span.parent_id else None
                if parent is not None:
                    parent["children"].append(record)
                else:
                    roots.append(record)
            out.append(
                {"trace_id": trace_id, "num_spans": len(spans), "spans": roots}
            )
        return out


# --------------------------------------------------------------------------- #
# Process-global state
# --------------------------------------------------------------------------- #
_STORE = TraceStore()
_local = threading.local()

_state_lock = threading.Lock()
_enabled = False
_sample_rate = 1.0
_sampler = random.Random(0)
_trace_counter = itertools.count(1)
_span_counter = itertools.count(1)


def tracing_enabled() -> bool:
    return _enabled


def trace_store() -> TraceStore:
    return _STORE


def configure_tracing(
    enabled: Optional[bool] = None,
    sample_rate: Optional[float] = None,
    seed: Optional[int] = None,
    capacity: Optional[int] = None,
) -> None:
    """(Re)configure the tracing layer.

    ``seed`` re-seeds the head sampler *and* resets the ID counters, so a
    fixed-seed run mints the same IDs and samples the same traces every
    time; ``capacity`` rebuilds the span ring (dropping stored spans).
    """
    global _enabled, _sample_rate, _sampler, _STORE, _trace_counter, _span_counter
    with _state_lock:
        if enabled is not None:
            _enabled = bool(enabled)
        if sample_rate is not None:
            if not 0.0 <= sample_rate <= 1.0:
                raise ValueError("sample_rate must lie in [0, 1]")
            _sample_rate = float(sample_rate)
        if seed is not None:
            _sampler = random.Random(int(seed))
            _trace_counter = itertools.count(1)
            _span_counter = itertools.count(1)
        if capacity is not None:
            _STORE = TraceStore(capacity=capacity)


def _stack() -> List[Span]:
    stack = getattr(_local, "spans", None)
    if stack is None:
        stack = _local.spans = []
    return stack


def _push(span: Span) -> None:
    _stack().append(span)


def _pop(span: Span) -> None:
    stack = _stack()
    if stack and stack[-1] is span:
        stack.pop()
    elif span in stack:  # pragma: no cover - unbalanced exit, stay consistent
        stack.remove(span)


def current_span() -> Optional[Span]:
    """The span on top of this thread's stack (``None`` when idle/disabled)."""
    if not _enabled:
        return None
    stack = getattr(_local, "spans", None)
    return stack[-1] if stack else None


def current_context() -> Optional[SpanContext]:
    """Capture-able handle on the active span (the cross-thread handoff)."""
    span = current_span()
    return span.context if span is not None else None


def _sample() -> bool:
    with _state_lock:
        if _sample_rate >= 1.0:
            return True
        if _sample_rate <= 0.0:
            return False
        return _sampler.random() < _sample_rate


def _mint_trace_id() -> str:
    with _state_lock:
        return f"t{next(_trace_counter):08x}"


def _mint_span_id() -> str:
    with _state_lock:
        return f"s{next(_span_counter):08x}"


def start_trace(name: str, attrs: Optional[Dict[str, Any]] = None):
    """Mint a new trace and open its root span (head-sampled at mint time).

    Use as a context manager.  An unsampled trace returns the shared no-op
    span: its whole tree costs nothing and records nothing.
    """
    if not _enabled or not _sample():
        return NOOP_SPAN
    return Span(_mint_trace_id(), _mint_span_id(), None, name, attrs=attrs)


def start_span(
    name: str,
    attrs: Optional[Dict[str, Any]] = None,
    parent: Optional[SpanContext] = None,
):
    """Open a child span under ``parent`` (default: this thread's active span).

    With no parent anywhere, returns the no-op span — bare library calls
    outside any trace never record orphan spans.
    """
    if not _enabled:
        return NOOP_SPAN
    if parent is None:
        active = current_span()
        if active is None:
            return NOOP_SPAN
        parent = active.context
    elif not parent.sampled:
        return NOOP_SPAN
    return Span(parent.trace_id, _mint_span_id(), parent.span_id, name, attrs=attrs)


def record_span(
    name: str,
    parent: Optional[SpanContext],
    start: float,
    end: float,
    attrs: Optional[Dict[str, Any]] = None,
) -> Optional[SpanContext]:
    """Record one already-timed span under a captured context.

    The batch worker's API: it measured ``start`` / ``end`` itself (with
    ``time.perf_counter()``) and attributes the interval to the submitting
    request's trace after the fact.  Returns the new span's context so a
    further child (the model pass inside the batch) can chain under it;
    ``None`` when tracing is off or the parent context is absent/unsampled.
    """
    if not _enabled or parent is None or not parent.sampled:
        return None
    span = Span(
        parent.trace_id, _mint_span_id(), parent.span_id, name,
        start=start, attrs=attrs,
    )
    span.finish(end=end)
    return SpanContext(span.trace_id, span.span_id, sampled=True)
