"""Structured JSON event logging with trace-ID correlation.

:func:`log_event` is the stack's one structured logging call: drift events,
refit lifecycle, promote/rollback, chaos injections — anything that used to
be an ad-hoc print (or silent) emits one flat JSON record:

``{"ts": <epoch>, "kind": "...", "trace_id": "... or null", ...fields}``

``trace_id`` is filled from the active span automatically, so a drift event
fired while resolving an observation inside a traced ``fleet.tick`` (or a
promotion performed inside a traced admin request) correlates with its
trace in ``GET /trace`` — the log tells you *what* happened, the trace
tells you *where in the request* it happened.

Records go to a pluggable sink (default: one JSON line per record on
stderr) and into a bounded in-memory ring (:func:`recent_events`) the ops
surfaces read.  Every record is stamped with a process-wide monotonic
*sequence number*, so cursor-based consumers — the gateway's ``GET /tail``
live stream — can poll :func:`events_since` and receive each event exactly
once, in order, without a callback registry.  Disabled (the default),
:func:`log_event` is a single flag check — the hooks sprinkled through the
serving stack cost nothing.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.trace import current_span
from repro.utils.jsonsafe import json_ready

__all__ = [
    "configure_logging",
    "events_since",
    "log_event",
    "logging_enabled",
    "recent_events",
]

#: ``sink(record)`` — consumes one JSON-ready event record.
EventSink = Callable[[Dict[str, Any]], None]

def _stderr_sink(record: Dict[str, Any]) -> None:
    try:
        # Strict JSON even on the diagnostic sink: a NaN field would emit
        # bytes most log pipelines reject, so sanitize then forbid.
        text = json.dumps(
            json_ready(record, nan_to_none=True), default=str, allow_nan=False
        )
        sys.stderr.write(text + "\n")
    except (OSError, TypeError, ValueError):
        pass  # a closed stderr / hostile payload must never kill serving


_enabled = False
_lock = threading.Lock()
_ring: deque = deque(maxlen=1024)
_sink: Optional[EventSink] = _stderr_sink
_emitted = 0


def logging_enabled() -> bool:
    return _enabled


def configure_logging(
    enabled: Optional[bool] = None,
    sink: Optional[EventSink] = None,
    ring_size: Optional[int] = None,
) -> None:
    """(Re)configure structured logging.

    ``sink=False`` silences the external sink (ring only); ``sink=None``
    leaves it unchanged; any callable replaces it.  ``ring_size`` rebuilds
    the in-memory ring (dropping retained events).
    """
    global _enabled, _sink, _ring
    with _lock:
        if enabled is not None:
            _enabled = bool(enabled)
        if sink is not None:
            _sink = None if sink is False else sink
        if ring_size is not None:
            _ring = deque(maxlen=int(ring_size))


def log_event(kind: str, message: str = "", **fields: Any) -> Optional[Dict[str, Any]]:
    """Emit one structured event record; returns it (``None`` while disabled).

    ``kind`` is the machine-readable event name (``drift.coverage_breach``,
    ``serving.promote``, ``chaos.predict_fault``, ...); keyword fields land
    flat on the record.  The active trace ID (if any) is attached
    automatically.
    """
    if not _enabled:
        return None
    span = current_span()
    record: Dict[str, Any] = {
        "ts": time.time(),
        "kind": str(kind),
        "trace_id": span.trace_id if span is not None else None,
    }
    if message:
        record["message"] = str(message)
    record.update(fields)
    global _emitted
    with _lock:
        _emitted += 1
        _ring.append((_emitted, record))
        sink = _sink
    if sink is not None:
        sink(record)
    return record


def recent_events(limit: int = 100) -> List[Dict[str, Any]]:
    """The most recent ``limit`` event records, oldest first."""
    with _lock:
        events = [record for _, record in _ring]
    return events[-max(int(limit), 0):]


def events_since(
    seq: int, limit: int = 256
) -> List[Tuple[int, Dict[str, Any]]]:
    """Ring records with sequence number > ``seq``, oldest first.

    The cursor read behind the live tail: a consumer remembers the last
    sequence number it saw and polls with it, receiving each retained event
    exactly once and in order.  Events that fell off the ring before the
    consumer caught up are simply gone (the ring is the bound); ``limit``
    caps one poll's batch.
    """
    seq = int(seq)
    with _lock:
        fresh = [(s, record) for s, record in _ring if s > seq]
    return fresh[: max(int(limit), 0)]


def last_event_seq() -> int:
    """Sequence number of the newest event (0 before any event)."""
    with _lock:
        return _ring[-1][0] if _ring else _emitted


def events_emitted() -> int:
    """Total events emitted since process start (monotonic counter)."""
    with _lock:
        return _emitted
